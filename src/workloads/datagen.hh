/**
 * @file
 * Synthetic dataset generators standing in for the paper's six NLP
 * corpora (Table II). Each generator produces a task whose solution
 * genuinely requires the LSTM's context links — so the inter-cell
 * approximation has a real accuracy cost to trade against — while
 * remaining learnable by a small model in seconds:
 *
 *   Sentiment (IMDB/MR):  sign-count of "positive" vs "negative" tokens;
 *   QA (BABI):            a key/value fact appears early, the query for
 *                         the key arrives at the end;
 *   Entailment (SNLI):    premise segment and hypothesis segment agree /
 *                         contradict / are unrelated;
 *   LM (PTB):             first-order Markov corpus with a sparse,
 *                         structured transition graph;
 *   MT (Tatoeba-like):    source half followed by its token-mapped
 *                         translation (prediction of the target half
 *                         requires carrying the source).
 */

#ifndef MFLSTM_WORKLOADS_DATAGEN_HH
#define MFLSTM_WORKLOADS_DATAGEN_HH

#include <cstdint>
#include <vector>

#include "nn/model.hh"
#include "workloads/benchmarks.hh"

namespace mflstm {
namespace workloads {

/** Token sequences + labels for the classification families. */
struct ClassificationData
{
    std::vector<nn::Sample> train;
    std::vector<nn::Sample> test;
};

/** Token sequences for the LM families. */
struct LmData
{
    std::vector<std::vector<std::int32_t>> train;
    std::vector<std::vector<std::int32_t>> test;
};

/** Holder for either family (exactly one side is populated). */
struct TaskData
{
    ClassificationData cls;
    LmData lm;
    bool isLm = false;

    /** Token sequences usable for offline calibration (training side). */
    std::vector<std::vector<std::int32_t>>
    calibrationSequences(std::size_t limit) const;
};

ClassificationData
makeSentimentTask(std::size_t vocab, std::size_t length,
                  std::size_t n_train, std::size_t n_test,
                  std::uint64_t seed);

ClassificationData
makeQaTask(std::size_t vocab, std::size_t num_classes, std::size_t length,
           std::size_t n_train, std::size_t n_test, std::uint64_t seed);

ClassificationData
makeEntailmentTask(std::size_t vocab, std::size_t length,
                   std::size_t n_train, std::size_t n_test,
                   std::uint64_t seed);

LmData
makeLanguageModelTask(std::size_t vocab, std::size_t length,
                      std::size_t n_train, std::size_t n_test,
                      std::uint64_t seed);

LmData
makeTranslationTask(std::size_t vocab, std::size_t length,
                    std::size_t n_train, std::size_t n_test,
                    std::uint64_t seed);

/** Generate the right family for a Table II benchmark. */
TaskData makeTask(const BenchmarkSpec &spec, std::size_t n_train,
                  std::size_t n_test);

/**
 * Train a fresh accuracy model for a benchmark on its synthetic task.
 * @return the trained model; training is deterministic given the spec.
 */
nn::LstmModel trainAccuracyModel(const BenchmarkSpec &spec,
                                 const TaskData &data,
                                 std::size_t epochs = 20);

/** Task-appropriate accuracy of an exact model on the test split. */
double exactAccuracy(const nn::LstmModel &model, const TaskData &data);

} // namespace workloads
} // namespace mflstm

#endif // MFLSTM_WORKLOADS_DATAGEN_HH
