#include "core/planner.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/tissue.hh"

namespace mflstm {
namespace core {

std::vector<std::size_t>
evenSubLayers(std::size_t length, std::size_t parts)
{
    if (length == 0)
        return {};
    parts = std::clamp<std::size_t>(parts, 1, length);

    std::vector<std::size_t> lens(parts, length / parts);
    for (std::size_t i = 0; i < length % parts; ++i)
        ++lens[i];
    return lens;
}

runtime::ExecutionPlan
buildPlan(runtime::PlanKind kind,
          const std::vector<LayerApproxStats> &stats,
          const runtime::NetworkShape &shape, std::size_t mts,
          std::size_t model_hidden)
{
    if (stats.size() != shape.layers.size())
        throw std::invalid_argument("buildPlan: stats/shape mismatch");
    if (model_hidden == 0)
        throw std::invalid_argument("buildPlan: zero model hidden");

    runtime::ExecutionPlan plan;
    plan.kind = kind;

    const bool inter = plan.usesInter();
    const bool intra = plan.usesIntra();

    for (std::size_t l = 0; l < shape.layers.size(); ++l) {
        const std::size_t n = shape.layers[l].length;

        if (inter) {
            // Projected sub-layer count: the measured break rate applied
            // to this layer's (timing-shape) link count.
            const double rate = stats[l].breakRate();
            const auto parts = static_cast<std::size_t>(
                std::round(rate * static_cast<double>(n - 1))) + 1;
            runtime::LayerInterPlan ip;
            ip.tissueSizes =
                alignTissues(evenSubLayers(n, parts), mts);
            plan.inter.push_back(std::move(ip));
        }

        if (intra) {
            plan.intra.push_back(
                {stats[l].skipFraction(model_hidden)});
        }
    }
    return plan;
}

} // namespace core
} // namespace mflstm
