#include "core/api.hh"

#include <cmath>
#include <stdexcept>

namespace mflstm {
namespace core {

MemoryFriendlyLstm::MemoryFriendlyLstm(const nn::LstmModel &accuracy_model,
                                       const Config &cfg)
    : cfg_(cfg), executor_(cfg_.gpu, cfg_.observer),
      runner_(accuracy_model)
{
    if (cfg_.timingShape.layers.empty())
        throw std::invalid_argument(
            "MemoryFriendlyLstm: empty timing shape");
    if (cfg_.timingShape.layers.size() !=
        accuracy_model.layers().size()) {
        throw std::invalid_argument(
            "MemoryFriendlyLstm: timing shape and accuracy model must "
            "have the same layer count");
    }

    runtime::ExecutionPlan base;
    base.kind = runtime::PlanKind::Baseline;
    baseline_ = executor_.run(cfg_.timingShape, base);
}

const MemoryFriendlyLstm::Calibration &
MemoryFriendlyLstm::calibrate(
    const std::vector<std::vector<std::int32_t>> &train_seqs)
{
    obs::Observer *obs = cfg_.observer;
    auto ph = obs::Observer::phase(obs, "calibrate");
    Calibration cal;

    {
        // Fig. 10 op 1: tissue-size sweep on the target GPU.
        auto sub = obs::Observer::phase(obs, "mts-sweep");
        cal.mtsSweep =
            findMts(executor_, cfg_.timingShape.layers.front());
        cal.mts = cal.mtsSweep.mts;
    }

    {
        // Fig. 10 op 4: link predictors from the training distribution.
        auto sub = obs::Observer::phase(obs, "predictor-calibration");
        runner_.calibrate(train_seqs);
    }

    {
        // Fig. 10 op 2: threshold upper limits from the exact profile
        // (runs the relevance scan over the calibration sequences).
        auto sub = obs::Observer::phase(obs, "relevance-profile");
        cal.profile = runner_.profile(train_seqs);
        cal.limits = findThresholdLimits(
            cal.profile, cal.mts, cfg_.timingShape.layers.front().length);
    }

    calibration_ = std::move(cal);
    return *calibration_;
}

const MemoryFriendlyLstm::Calibration &
MemoryFriendlyLstm::calibration() const
{
    if (!calibration_)
        throw std::logic_error(
            "MemoryFriendlyLstm: calibrate() has not run");
    return *calibration_;
}

void
MemoryFriendlyLstm::setThresholds(const ThresholdSet &set)
{
    // May throw (alphaInter before calibrate()); only commit after.
    runner_.setThresholds(set.alphaInter, set.alphaIntra);
    runner_.setQuantMode(set.quant);
    runner_.resetStats();
    thresholds_ = set;
}

runtime::ExecutionPlan
MemoryFriendlyLstm::planFromStats(
    const TimingOptions &opts,
    const std::vector<LayerApproxStats> &stats,
    quant::QuantMode quant_mode, const runtime::NetworkExecutor &exec,
    obs::Observer *observer) const
{
    runtime::ExecutionPlan plan;
    plan.kind = opts.kind;
    // The lowering forces ZeroPruning back to fp32 (the CSR comparator
    // is defined on full-precision weights); every other kind prices
    // W/U traffic at this precision.
    plan.quantMode = quant_mode;

    if (opts.kind == runtime::PlanKind::Baseline)
        return plan;
    if (opts.kind == runtime::PlanKind::ZeroPruning) {
        plan.pruneFraction = opts.pruneFraction;
        return plan;
    }

    const Calibration &cal = calibration();
    const std::size_t model_hidden =
        runner_.model().config().hiddenSize;

    std::size_t mts = cal.mts;
    if (opts.kind == runtime::PlanKind::Combined) {
        // DRS relieves on-chip traffic inside the tissue GEMM, which
        // raises the bandwidth-limited MTS; re-run the sweep with the
        // measured mean skip fraction.
        double skip = 0.0;
        for (const LayerApproxStats &st : stats)
            skip += st.skipFraction(model_hidden);
        skip /= static_cast<double>(stats.size());
        if (skip > 0.0) {
            mts = findMts(exec, cfg_.timingShape.layers.front(), 12,
                          skip)
                      .mts;
        }
    }

    auto ph = obs::Observer::phase(observer, "planning");
    runtime::ExecutionPlan built =
        buildPlan(opts.kind, stats, cfg_.timingShape, mts, model_hidden);
    built.quantMode = quant_mode;
    return built;
}

TimingOutcome
MemoryFriendlyLstm::evaluateTiming(const TimingOptions &opts) const
{
    // An observer override gets its own executor so the configured
    // sink sees nothing from this evaluation.
    std::optional<runtime::NetworkExecutor> local;
    if (opts.observer)
        local.emplace(cfg_.gpu, opts.observer);
    const runtime::NetworkExecutor &exec = local ? *local : executor_;
    obs::Observer *observer =
        opts.observer ? opts.observer : cfg_.observer;

    TimingOutcome out;

    // The cached baseline is the fp32 Algorithm 1 run; a quantized
    // Baseline (the "quantization alone" column of Fig. 16) must go
    // through the executor so the lowering prices the narrower weights.
    if (opts.kind == runtime::PlanKind::Baseline &&
        thresholds_.quant == quant::QuantMode::Fp32) {
        out.report = baseline_;
        out.plan.kind = opts.kind;
        out.speedup = 1.0;
        out.energySavingPct = 0.0;
        return out;
    }

    out.plan = planFromStats(opts, runner_.stats(), thresholds_.quant,
                             exec, observer);
    out.report = exec.run(cfg_.timingShape, out.plan);
    out.speedup = runtime::speedup(baseline_, out.report);
    out.energySavingPct = runtime::energySavingPct(baseline_, out.report);
    return out;
}

MemoryFriendlyLstm::RungSnapshot
MemoryFriendlyLstm::snapshotRung(
    const ThresholdSet &set,
    const std::vector<std::vector<std::int32_t>> &eval_seqs,
    const TimingOptions &opts) const
{
    std::optional<runtime::NetworkExecutor> local;
    if (opts.observer)
        local.emplace(cfg_.gpu, opts.observer);
    const runtime::NetworkExecutor &exec = local ? *local : executor_;
    obs::Observer *observer =
        opts.observer ? opts.observer : cfg_.observer;

    RungSnapshot snap{set, {}, runner_};
    snap.runner.setThresholds(set.alphaInter, set.alphaIntra);
    snap.runner.setQuantMode(set.quant);
    snap.runner.resetStats();

    const bool needs_stats =
        opts.kind != runtime::PlanKind::Baseline &&
        opts.kind != runtime::PlanKind::ZeroPruning;
    if (needs_stats) {
        if (eval_seqs.empty())
            throw std::invalid_argument(
                "snapshotRung: statistics-driven plan kind needs "
                "eval sequences");
        auto ph = obs::Observer::phase(observer, "rung-eval");
        const bool lm = runner_.model().config().task ==
                        nn::TaskKind::LanguageModel;
        for (const auto &s : eval_seqs) {
            if (lm)
                snap.runner.lmLogits(s);
            else
                snap.runner.classify(s);
        }
    }
    snap.plan = planFromStats(opts, snap.runner.stats(), set.quant, exec,
                              observer);
    return snap;
}

TimingOutcome
MemoryFriendlyLstm::evaluateTiming(runtime::PlanKind kind,
                                   double prune_fraction) const
{
    TimingOptions opts;
    opts.kind = kind;
    opts.pruneFraction = prune_fraction;
    return evaluateTiming(opts);
}

} // namespace core
} // namespace mflstm
