/**
 * @file
 * Functional (accuracy-side) implementation of the paper's two
 * approximations, mirroring what the paper implements in PyTorch:
 *
 *  - inter-cell: per sequence and per layer, compute the link relevance
 *    values (Algorithm 2) from the input projections, break links weaker
 *    than alpha_inter, and substitute the predicted context link (Eq. 6)
 *    at every breakpoint;
 *
 *  - intra-cell DRS: per cell, compute the output gate o_t first; for
 *    elements with o_t <= alpha_intra, skip the corresponding rows of
 *    U_{f,i,c} — their cell-state elements become 0 (Section V-A).
 *
 * The ApproxRunner drives a trained nn::LstmModel through these modified
 * dataflows and records the division/skip statistics that the timing
 * planner (core/planner.hh) turns into an ExecutionPlan.
 */

#ifndef MFLSTM_CORE_APPROX_HH
#define MFLSTM_CORE_APPROX_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/predictor.hh"
#include "core/relevance.hh"
#include "nn/model.hh"
#include "quant/qformat.hh"

namespace mflstm {
namespace core {

/**
 * What a DRS-skipped row means for the cell state. Algorithm 3 row-skips
 * only the Sgemv(U_{f,i,c}, h, R) kernel; the element-wise kernel of
 * line 8 carries no R argument, so the faithful reading (the default) is
 * that a skipped row merely loses its recurrent contribution
 * U_* h_{t-1} while the gate still evaluates on the input projection.
 * Section V-A's prose alternatively describes the affected c_t elements
 * as "approximated to zero"; ZeroState implements that harsher variant
 * (kept for the ablation study in bench_ablation).
 */
enum class DrsStatePolicy {
    DropRecurrent,  ///< skipped rows: gates see W x_t + b only (default)
    ZeroState,      ///< skipped rows: c_t (and hence h_t) forced to 0
};

/** DRS cell step: Eq. 1-5 with rows skipped by the o_t threshold. */
nn::LstmState
lstmCellForwardDrs(const nn::LstmLayerParams &params,
                   const Vector &x_proj, const nn::LstmState &prev,
                   double alpha_intra, nn::SigmoidKind sk,
                   std::size_t *skipped_rows = nullptr,
                   DrsStatePolicy policy = DrsStatePolicy::DropRecurrent);

/** Aggregated approximation statistics for one layer. */
struct LayerApproxStats
{
    std::size_t sequences = 0;   ///< forward passes observed
    std::size_t links = 0;       ///< breakable links seen
    std::size_t breaks = 0;      ///< links actually broken
    std::size_t cells = 0;       ///< cells executed
    double skippedRows = 0.0;    ///< DRS-skipped rows (of hidden size)

    /** Fraction of links broken by alpha_inter. */
    double breakRate() const
    {
        return links ? static_cast<double>(breaks) /
                           static_cast<double>(links)
                     : 0.0;
    }

    /** Mean fraction of U_{f,i,c} rows skipped per cell. */
    double skipFraction(std::size_t hidden_size) const
    {
        return cells ? skippedRows / (static_cast<double>(cells) *
                                      static_cast<double>(hidden_size))
                     : 0.0;
    }

    /** Mean sub-layer count per sequence. */
    double avgSubLayers() const
    {
        return sequences ? 1.0 + static_cast<double>(breaks) /
                                     static_cast<double>(sequences)
                         : 1.0;
    }
};

/**
 * Runs a trained model with the approximations enabled and collects the
 * statistics the timing side needs. Thread-compatible, not thread-safe.
 */
class ApproxRunner
{
  public:
    explicit ApproxRunner(const nn::LstmModel &model);

    /**
     * Offline calibration (Fig. 10 op 4): run the exact model over
     * training sequences and collect the context-link distributions per
     * layer for the Eq. 6 predictors.
     */
    void calibrate(
        const std::vector<std::vector<std::int32_t>> &token_seqs);

    /** Has calibrate() ingested at least one sequence? */
    bool calibrated() const;

    /**
     * Set the two thresholds. alpha_inter = 0 disables layer division;
     * alpha_intra = 0 disables DRS (o_t is strictly positive).
     */
    void setThresholds(double alpha_inter, double alpha_intra);

    double alphaInter() const { return alphaInter_; }
    double alphaIntra() const { return alphaIntra_; }

    /** Select the DRS skipped-row semantics (see DrsStatePolicy). */
    void setDrsPolicy(DrsStatePolicy policy) { drsPolicy_ = policy; }
    DrsStatePolicy drsPolicy() const { return drsPolicy_; }

    /**
     * Set the weight precision of the served model (DESIGN.md §12).
     * A non-fp32 mode swaps the forward passes onto a fake-quantized
     * copy of the model (bit-identical to running the in-register
     * dequant kernels of tensor/qmatrix.hh) and rebuilds the relevance
     * contexts from the quantized rows; Fp32 restores the original.
     * Calibration is expected to happen at fp32 before a quantized
     * mode is selected (the facade orders it that way).
     */
    void setQuantMode(quant::QuantMode mode);
    quant::QuantMode quantMode() const { return quantMode_; }

    /** The model the forward passes actually run (fake-quantized or
     *  the fp32 original). */
    const nn::LstmModel &activeModel() const
    {
        return qmodel_ ? *qmodel_ : model_;
    }

    /** Approximate classification logits (cf. LstmModel::classify). */
    Vector classify(std::span<const std::int32_t> tokens);

    /** Approximate per-step LM logits (cf. LstmModel::lmLogits). */
    std::vector<Vector> lmLogits(std::span<const std::int32_t> tokens);

    /** Approximate stack forward over embedded inputs. */
    std::vector<Vector> runLayers(const std::vector<Vector> &inputs);

    const std::vector<LayerApproxStats> &stats() const { return stats_; }
    void resetStats();

    /** Per-layer link predictors (persistence export/restore). */
    const std::vector<LinkPredictor> &predictors() const
    {
        return predictors_;
    }
    std::vector<LinkPredictor> &predictors() { return predictors_; }

    const nn::LstmModel &model() const { return model_; }

    /**
     * Exact-forward profile of the model on a dataset: the pooled link
     * relevance values S (all layers) and the output-gate magnitude
     * distribution. These define the meaningful ranges of the two
     * thresholds (Fig. 10, offline op 2).
     */
    struct CalibrationProfile
    {
        std::vector<double> relevances;  ///< pooled S, sorted ascending
        /// per-layer S values, sorted ascending (division is per layer)
        std::vector<std::vector<double>> layerRelevances;
        std::vector<float> outputGates;  ///< pooled o_t values, sorted

        /// fraction of layer l's links with S < alpha
        double layerBreakFraction(std::size_t l, double alpha) const;

        /** S quantile: the alpha_inter that breaks fraction q of links. */
        double relevanceQuantile(double q) const;

        /** o_t quantile: the alpha_intra that skips fraction q of rows. */
        double outputGateQuantile(double q) const;
    };

    CalibrationProfile
    profile(const std::vector<std::vector<std::int32_t>> &token_seqs) const;

  private:
    void rebuildRelevanceContexts();

    const nn::LstmModel &model_;
    /// fake-quantized serving copy; engaged iff quantMode_ != Fp32
    std::optional<nn::LstmModel> qmodel_;
    std::vector<LayerRelevanceContext> relevanceCtx_;
    std::vector<LinkPredictor> predictors_;
    std::vector<LayerApproxStats> stats_;
    double alphaInter_ = 0.0;
    double alphaIntra_ = 0.0;
    quant::QuantMode quantMode_ = quant::QuantMode::Fp32;
    DrsStatePolicy drsPolicy_ = DrsStatePolicy::DropRecurrent;
};

/** classificationAccuracy through the approximate dataflow. */
double approxClassificationAccuracy(ApproxRunner &runner,
                                    const std::vector<nn::Sample> &data);

/** lmNextTokenAccuracy through the approximate dataflow. */
double approxLmNextTokenAccuracy(
    ApproxRunner &runner,
    const std::vector<std::vector<std::int32_t>> &seqs);

} // namespace core
} // namespace mflstm

#endif // MFLSTM_CORE_APPROX_HH
