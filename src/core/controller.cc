#include "core/controller.hh"

#include <algorithm>
#include <stdexcept>

namespace mflstm {
namespace core {

UserOrientedController::UserOrientedController(
    std::vector<ThresholdSet> ladder, double preferred_accuracy,
    const ControllerConfig &cfg)
    : ladder_(std::move(ladder)), preferred_(preferred_accuracy),
      cfg_(cfg), index_(cfg.initialIndex)
{
    if (ladder_.empty())
        throw std::invalid_argument(
            "UserOrientedController: empty ladder");
    if (preferred_ < 0.0 || preferred_ > 1.0)
        throw std::invalid_argument(
            "UserOrientedController: preference out of [0,1]");
    index_ = std::min(index_, ladder_.size() - 1);
}

const ThresholdSet &
UserOrientedController::current() const
{
    return ladder_[index_];
}

std::size_t
UserOrientedController::observe(double accuracy)
{
    ++observations_;
    if (emaValid_) {
        ema_ = cfg_.emaWeight * accuracy +
               (1.0 - cfg_.emaWeight) * ema_;
    } else {
        ema_ = accuracy;
        emaValid_ = true;
    }

    if (ema_ < preferred_ - cfg_.backoffMargin) {
        // Too much loss for this user: retreat one rung and hold.
        if (index_ > 0)
            --index_;
        cooldownLeft_ = cfg_.cooldown;
        emaValid_ = false;  // the estimate belongs to the old rung
        return index_;
    }

    if (cooldownLeft_ > 0) {
        --cooldownLeft_;
        return index_;
    }

    if (ema_ >= preferred_ + cfg_.climbMargin &&
        index_ + 1 < ladder_.size()) {
        ++index_;
        emaValid_ = false;
    }
    return index_;
}

void
UserOrientedController::setPreferredAccuracy(double preferred)
{
    if (preferred < 0.0 || preferred > 1.0)
        throw std::invalid_argument(
            "UserOrientedController: preference out of [0,1]");
    preferred_ = preferred;
    cooldownLeft_ = 0;
    emaValid_ = false;
}

} // namespace core
} // namespace mflstm
