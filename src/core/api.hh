/**
 * @file
 * MemoryFriendlyLstm — the library's public facade. Wraps a trained
 * accuracy model (nn::LstmModel) and a full-size timing shape (Table II
 * row) and drives the paper's whole flow:
 *
 *   offline (Fig. 10 ops 1-4): MTS sweep on the target GPU, threshold
 *   upper limits from the calibration profile, context-link predictors;
 *
 *   per threshold set: run the approximate dataflow for accuracy +
 *   division/skip statistics, project the statistics onto the timing
 *   shape, and simulate the resulting kernel schedule for speedup and
 *   energy.
 *
 * Typical use (see examples/quickstart.cc):
 *
 *   nn::LstmModel model = ...train...;
 *   core::MemoryFriendlyLstm mf(model, {gpu::GpuConfig::tegraX1(),
 *                                       runtime::NetworkShape::stacked(
 *                                           512, 512, 3, 80)});
 *   mf.calibrate(train_seqs);
 *   mf.setThresholds({a_inter, a_intra});
 *   double acc = core::approxClassificationAccuracy(mf.runner(), test);
 *   auto timing = mf.evaluateTiming({runtime::PlanKind::Combined});
 */

#ifndef MFLSTM_CORE_API_HH
#define MFLSTM_CORE_API_HH

#include <memory>
#include <optional>

#include "core/approx.hh"
#include "core/planner.hh"
#include "core/thresholds.hh"
#include "core/tissue.hh"
#include "gpu/config.hh"
#include "runtime/executor.hh"

namespace mflstm {
namespace core {

/** One timing evaluation (vs the cached baseline). */
struct TimingOutcome
{
    runtime::RunReport report;
    runtime::ExecutionPlan plan;
    double speedup = 1.0;
    double energySavingPct = 0.0;
};

/** Everything one evaluateTiming call needs, in one descriptor. */
struct TimingOptions
{
    runtime::PlanKind kind = runtime::PlanKind::Combined;
    /// element fraction pruned by the ZeroPruning comparator ([31]'s
    /// reported LSTM sparsity); ignored by every other kind
    double pruneFraction = 0.37;
    /**
     * Observability sink for this evaluation only, overriding (not
     * merging with) Config::observer. nullptr keeps the configured
     * sink.
     */
    obs::Observer *observer = nullptr;
};

class MemoryFriendlyLstm
{
  public:
    struct Config
    {
        gpu::GpuConfig gpu = gpu::GpuConfig::tegraX1();
        runtime::NetworkShape timingShape;
        /**
         * Optional observability sink: host phases (calibration,
         * planning, lowering, simulation), the simulated-kernel
         * timeline and the metrics registry all record into it. The
         * facade never owns it; nullptr (the default) disables all
         * recording.
         */
        obs::Observer *observer = nullptr;
    };

    /** Offline calibration results (Fig. 10 left half). */
    struct Calibration
    {
        std::size_t mts = 1;
        MtsResult mtsSweep;
        ThresholdLimits limits;
        ApproxRunner::CalibrationProfile profile;

        /** The Fig. 19 threshold ladder for this application. */
        std::vector<ThresholdSet> ladder(std::size_t count = 11) const
        {
            return thresholdLadder(profile, limits, count);
        }
    };

    MemoryFriendlyLstm(const nn::LstmModel &accuracy_model,
                       const Config &cfg);

    /**
     * Offline phase: MTS sweep, threshold limits, link predictors.
     * @param train_seqs token sequences representative of training data.
     */
    const Calibration &
    calibrate(const std::vector<std::vector<std::int32_t>> &train_seqs);

    bool calibrated() const { return calibration_.has_value(); }
    const Calibration &calibration() const;

    /**
     * Install a previously computed Calibration without re-running the
     * offline phase — the warm-restart path (core/persist.hh). The
     * caller is responsible for the calibration matching this model;
     * loadCalibration enforces that with a model fingerprint.
     */
    void restoreCalibration(const Calibration &calib)
    {
        calibration_ = calib;
    }

    /**
     * Set the two approximation thresholds and reset the accumulated
     * division/skip statistics (every threshold change starts a fresh
     * measurement window). This is the supported mutation path; use
     * runner() for inspection and accuracy evaluation.
     *
     * @throws std::logic_error when set.alphaInter > 0 before
     *         calibrate() has run (layer division needs predictors).
     */
    void setThresholds(const ThresholdSet &set);

    /** The thresholds most recently applied via setThresholds(). */
    const ThresholdSet &thresholds() const { return thresholds_; }

    /** The approximate dataflow runner (inspection / accuracy eval). */
    ApproxRunner &runner() { return runner_; }
    const ApproxRunner &runner() const { return runner_; }

    const runtime::NetworkExecutor &executor() const { return executor_; }
    const Config &config() const { return cfg_; }

    /** Cached baseline (Algorithm 1) timing of the full-size shape. */
    const runtime::RunReport &baseline() const { return baseline_; }

    /**
     * Project the runner's current statistics onto the timing shape and
     * simulate @p opts.kind. Run an accuracy evaluation through
     * runner() first so the statistics reflect the active thresholds.
     */
    TimingOutcome evaluateTiming(const TimingOptions &opts) const;

    /**
     * Per-rung snapshot for the serving governor: a private runner
     * configured at one threshold set plus the execution plan its
     * measured statistics imply.
     */
    struct RungSnapshot
    {
        ThresholdSet set;
        runtime::ExecutionPlan plan;
        ApproxRunner runner;
    };

    /**
     * Build a RungSnapshot for @p set without mutating the facade:
     * copies the calibrated runner, applies the thresholds, replays
     * @p eval_seqs to measure division/skip statistics, and builds the
     * plan exactly as evaluateTiming would for @p opts.kind. The
     * serving engine snapshots every governor-ladder rung this way at
     * construction.
     *
     * @throws std::logic_error when set.alphaInter > 0 before
     *         calibrate() has run.
     * @throws std::invalid_argument when @p opts.kind is statistics-
     *         driven and @p eval_seqs is empty.
     */
    RungSnapshot
    snapshotRung(const ThresholdSet &set,
                 const std::vector<std::vector<std::int32_t>> &eval_seqs,
                 const TimingOptions &opts) const;

    /**
     * @deprecated Positional form kept for source compatibility;
     * delegates to evaluateTiming(const TimingOptions&).
     */
    TimingOutcome evaluateTiming(runtime::PlanKind kind,
                                 double prune_fraction = 0.37) const;

  private:
    runtime::ExecutionPlan
    planFromStats(const TimingOptions &opts,
                  const std::vector<LayerApproxStats> &stats,
                  quant::QuantMode quant_mode,
                  const runtime::NetworkExecutor &exec,
                  obs::Observer *observer) const;

    Config cfg_;
    runtime::NetworkExecutor executor_;
    ApproxRunner runner_;
    runtime::RunReport baseline_;
    std::optional<Calibration> calibration_;
    ThresholdSet thresholds_;
};

} // namespace core
} // namespace mflstm

#endif // MFLSTM_CORE_API_HH
