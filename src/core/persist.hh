/**
 * @file
 * Calibration persistence on the crash-safe artifact layer (DESIGN.md
 * §11). The offline phase of Fig. 10 — the MTS sweep, the relevance /
 * output-gate profile, the threshold limits and the per-layer context-
 * link predictor distributions — is the expensive part of bringing a
 * MemoryFriendlyLstm up; saving it lets a warm restart skip straight to
 * threshold selection. The predictors are stored as their raw histogram
 * bin counts, so the restored Eq. 6 expectations are bit-identical to
 * the ones the original process computed.
 *
 * A calibration is only meaningful for the exact model it was computed
 * on, so the file carries a model fingerprint (config dimensions plus a
 * CRC32 over every weight byte); loadCalibration rejects a mismatch
 * with ErrorKind::Stale instead of silently degrading accuracy.
 */

#ifndef MFLSTM_CORE_PERSIST_HH
#define MFLSTM_CORE_PERSIST_HH

#include <string>

#include "core/api.hh"
#include "io/artifact.hh"

namespace mflstm {
namespace core {

/** CRC32 over every weight byte of @p model, in serialization order. */
std::uint32_t modelWeightsCrc(const nn::LstmModel &model);

/**
 * Write @p mf's calibration (and predictor distributions) to @p path
 * atomically. @throws std::logic_error when calibrate() has not run;
 * io::ArtifactError on I/O failure.
 */
void saveCalibration(const MemoryFriendlyLstm &mf,
                     const std::string &path);

/**
 * Restore a saved calibration into @p mf: predictor bin counts into the
 * runner, the Calibration struct into the facade. Either completes
 * fully or throws io::ArtifactError leaving @p mf uncalibrated
 * (ErrorKind::Stale when the file belongs to a different model). When
 * @p obs is non-null a rejection bumps artifact_load_rejected_total.
 */
void loadCalibration(MemoryFriendlyLstm &mf, const std::string &path,
                     const io::ArtifactLimits &limits = {},
                     obs::Observer *obs = nullptr);

/**
 * Structural deep-verification for `mflstm fsck`: parse every chunk and
 * check internal consistency (without a model, staleness cannot be
 * checked). @throws io::ArtifactError on any defect.
 */
void verifyCalibrationFile(const std::string &path,
                           const io::ArtifactLimits &limits = {});

} // namespace core
} // namespace mflstm

#endif // MFLSTM_CORE_PERSIST_HH
