#include "core/relevance.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/ops.hh"

namespace mflstm {
namespace core {

LayerRelevanceContext::LayerRelevanceContext(
    const nn::LstmLayerParams &params)
    : df(tensor::rowAbsSums(params.uf)), di(tensor::rowAbsSums(params.ui)),
      dc(tensor::rowAbsSums(params.uc)), dout(tensor::rowAbsSums(params.uo))
{}

double
LayerRelevanceContext::relevance(const nn::LstmLayerParams &params,
                                 const Vector &x_proj) const
{
    const std::size_t dim = params.hiddenSize();
    if (x_proj.size() != 4 * dim)
        throw std::invalid_argument("relevance: bad x_proj size");

    // Algorithm 2 line 5, for gates whose both saturation ends are
    // "insensitive" (i, c, o): overlap of [m - D, m + D] with the
    // sensitive area via the two clipped terms of the paper's formula.
    auto s_ico = [](double m, double d) {
        const double a = 2.0 + std::min(2.0, std::fabs(m));
        const double b =
            std::min(2.0, 2.0 + d - std::max(2.0, std::fabs(m)));
        return std::min(a, b);
    };

    double s = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
        // Algorithm 2 line 4: forget gate. Saturating high (f -> 1)
        // preserves the cell state, so only the upper reach of the range
        // matters; S_f measures how far it extends into/through the
        // sensitive area.
        const double mf = x_proj[j] + params.bf[j];
        const double sf = std::min(4.0, std::max(mf + df[j] + 2.0, 0.0));

        const double si = s_ico(x_proj[dim + j] + params.bi[j], di[j]);
        const double sc = s_ico(x_proj[2 * dim + j] + params.bc[j], dc[j]);
        const double so =
            s_ico(x_proj[3 * dim + j] + params.bo[j], dout[j]);

        // Line 6: combine through the cell dataflow — the output gate
        // multiplies everything (Eq. 5), the forget path adds to the
        // input*candidate path (Eq. 3).
        const double sj = so * (sf + si * sc);
        s += std::max(0.0, sj);
    }
    return s;
}

GruRelevanceContext::GruRelevanceContext(const nn::GruLayerParams &params)
    : dz(tensor::rowAbsSums(params.uz)), dr(tensor::rowAbsSums(params.ur)),
      dh(tensor::rowAbsSums(params.uh))
{}

double
GruRelevanceContext::relevance(const nn::GruLayerParams &params,
                               const Vector &x_proj) const
{
    const std::size_t dim = params.hiddenSize();
    if (x_proj.size() != 3 * dim)
        throw std::invalid_argument("gru relevance: bad x_proj size");

    // Overlap lengths are clamped at zero per gate: unlike the LSTM
    // combination (one multiplier), the GRU form multiplies two
    // overlaps, and a negative-times-negative artefact must not read as
    // relevance.
    auto overlap = [](double m, double d) {
        const double a = 2.0 + std::min(2.0, std::fabs(m));
        const double b =
            std::min(2.0, 2.0 + d - std::max(2.0, std::fabs(m)));
        return std::max(0.0, std::min(a, b));
    };

    double s = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
        const double sz = overlap(x_proj[j] + params.bz[j], dz[j]);
        const double sr =
            overlap(x_proj[dim + j] + params.br[j], dr[j]);
        // The candidate's recurrent reach includes the reset-gated
        // state, so the reset row sum bounds it together with U_h.
        const double sh = overlap(x_proj[2 * dim + j] + params.bh[j],
                                  dh[j]);
        s += std::max(0.0, sz * (sr + sh));
    }
    return s;
}

std::vector<double>
layerLinkRelevances(const nn::LstmLayerParams &params,
                    const std::vector<Vector> &x_projs)
{
    LayerRelevanceContext ctx(params);
    std::vector<double> out(x_projs.size(),
                            std::numeric_limits<double>::infinity());
    // Link t-1 -> t is judged by how cell t *uses* h_{t-1}: evaluate
    // Algorithm 2 with cell t's input projection.
    for (std::size_t t = 1; t < x_projs.size(); ++t)
        out[t] = ctx.relevance(params, x_projs[t]);
    return out;
}

std::vector<std::size_t>
findBreakpoints(const std::vector<double> &relevances, double alpha_inter)
{
    std::vector<std::size_t> breaks;
    for (std::size_t t = 1; t < relevances.size(); ++t) {
        if (relevances[t] < alpha_inter)
            breaks.push_back(t);
    }
    return breaks;
}

std::vector<std::size_t>
subLayerLengths(std::size_t length,
                const std::vector<std::size_t> &breakpoints)
{
    if (length == 0)
        return {};

    std::vector<std::size_t> lens;
    std::size_t start = 0;
    for (std::size_t b : breakpoints) {
        if (b == 0 || b >= length)
            throw std::out_of_range("subLayerLengths: breakpoint range");
        if (b <= start)
            throw std::invalid_argument(
                "subLayerLengths: breakpoints must be increasing");
        lens.push_back(b - start);
        start = b;
    }
    lens.push_back(length - start);
    return lens;
}

} // namespace core
} // namespace mflstm
