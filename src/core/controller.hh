/**
 * @file
 * Online user-oriented threshold controller (Fig. 10, op 3 and the UO
 * scheme of Section VI-E): "alpha will be adjusted per each execution of
 * the application given the accuracy difference between the user
 * preferred accuracy and the application output accuracy".
 *
 * The controller walks the threshold ladder one rung at a time. After
 * every execution it receives the observed output accuracy (or a proxy
 * — user feedback in the paper's deployment): if the observation beats
 * the user's preferred accuracy with margin, it climbs toward more
 * aggressive thresholds; if it falls short, it backs off. Hysteresis
 * (separate up/down margins plus a climb-cooldown after a back-off)
 * keeps it from oscillating on noisy feedback.
 */

#ifndef MFLSTM_CORE_CONTROLLER_HH
#define MFLSTM_CORE_CONTROLLER_HH

#include <cstddef>
#include <vector>

#include "core/thresholds.hh"

namespace mflstm {
namespace core {

/** Tuning knobs of the UO controller. */
struct ControllerConfig
{
    /// start rung (0 = baseline thresholds)
    std::size_t initialIndex = 0;
    /// climb when observed accuracy exceeds the preference by this much
    double climbMargin = 0.01;
    /// back off when it falls below the preference by this much
    double backoffMargin = 0.0;
    /// executions to wait after a back-off before climbing again
    std::size_t cooldown = 3;
    /// smooth observations with an exponential moving average
    double emaWeight = 0.5;
};

/** The per-user adaptive threshold controller. */
class UserOrientedController
{
  public:
    /**
     * @param ladder          the application's threshold ladder.
     * @param preferred_accuracy the user's accuracy floor, [0,1].
     */
    UserOrientedController(std::vector<ThresholdSet> ladder,
                           double preferred_accuracy,
                           const ControllerConfig &cfg = {});

    /** The threshold set to use for the next execution. */
    const ThresholdSet &current() const;
    std::size_t currentIndex() const { return index_; }

    /**
     * Report one execution's observed accuracy; the controller adapts.
     * @return the rung selected for the next execution.
     */
    std::size_t observe(double accuracy);

    /** Smoothed accuracy estimate at the current rung. */
    double estimate() const { return ema_; }

    std::size_t observations() const { return observations_; }

    double preferredAccuracy() const { return preferred_; }
    void setPreferredAccuracy(double preferred);

  private:
    std::vector<ThresholdSet> ladder_;
    double preferred_;
    ControllerConfig cfg_;
    std::size_t index_;
    double ema_ = 0.0;
    bool emaValid_ = false;
    std::size_t cooldownLeft_ = 0;
    std::size_t observations_ = 0;
};

} // namespace core
} // namespace mflstm

#endif // MFLSTM_CORE_CONTROLLER_HH
