#include "core/thresholds.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/planner.hh"
#include "core/tissue.hh"

namespace mflstm {
namespace core {

std::size_t
projectedTissueCount(const ApproxRunner::CalibrationProfile &profile,
                     double alpha_inter, std::size_t mts,
                     std::size_t sequence_length)
{
    std::size_t total = 0;
    for (std::size_t l = 0; l < profile.layerRelevances.size(); ++l) {
        const double rate =
            profile.layerBreakFraction(l, alpha_inter);
        const auto parts = static_cast<std::size_t>(std::round(
                               rate * static_cast<double>(
                                          sequence_length - 1))) +
                           1;
        total += alignTissues(evenSubLayers(sequence_length, parts), mts)
                     .size();
    }
    return total;
}

ThresholdLimits
findThresholdLimits(const ApproxRunner::CalibrationProfile &profile,
                    std::size_t mts, std::size_t sequence_length,
                    double max_skip_cap)
{
    if (mts == 0 || sequence_length == 0)
        throw std::invalid_argument("findThresholdLimits: zero inputs");

    ThresholdLimits limits;
    limits.maxSkipFraction = max_skip_cap;
    limits.maxIntra = profile.outputGateQuantile(max_skip_cap);

    if (profile.relevances.empty() || sequence_length < 2) {
        limits.maxBreakFraction = 0.0;
        limits.maxInter = 0.0;
        return limits;
    }

    // Fig. 10 op 2: sweep candidate thresholds (quantiles of the pooled
    // relevance distribution, capped at the median — breaking most
    // links is never useful) and keep the smallest one that achieves
    // the minimal projected tissue count.
    constexpr std::size_t kSteps = 50;
    constexpr double kMaxQuantile = 0.5;

    double best_alpha = 0.0;
    double best_q = 0.0;
    std::size_t best_total =
        projectedTissueCount(profile, 0.0, mts, sequence_length);
    for (std::size_t i = 1; i <= kSteps; ++i) {
        const double q = kMaxQuantile * static_cast<double>(i) /
                         static_cast<double>(kSteps);
        const double alpha = profile.relevanceQuantile(q);
        const std::size_t total = projectedTissueCount(
            profile, alpha, mts, sequence_length);
        if (total < best_total) {
            best_total = total;
            best_alpha = alpha;
            best_q = q;
        }
    }
    limits.maxInter = best_alpha;
    limits.maxBreakFraction = best_q;
    return limits;
}

std::vector<ThresholdSet>
thresholdLadder(const ApproxRunner::CalibrationProfile &profile,
                const ThresholdLimits &limits, std::size_t count)
{
    if (count < 2)
        throw std::invalid_argument("thresholdLadder: need >= 2 sets");

    std::vector<ThresholdSet> ladder;
    ladder.reserve(count);
    ladder.push_back({0.0, 0.0});  // set 0: the baseline, no loss
    for (std::size_t i = 1; i < count; ++i) {
        const double f = static_cast<double>(i) /
                         static_cast<double>(count - 1);
        ThresholdSet set;
        set.alphaInter =
            profile.relevanceQuantile(f * limits.maxBreakFraction);
        set.alphaIntra =
            profile.outputGateQuantile(f * limits.maxSkipFraction);
        ladder.push_back(set);
    }
    return ladder;
}

std::size_t
selectAo(const std::vector<OperatingPoint> &points,
         double baseline_accuracy, double max_loss_pct)
{
    if (points.empty())
        throw std::invalid_argument("selectAo: no points");

    const double floor =
        baseline_accuracy - max_loss_pct / 100.0;
    std::size_t best = 0;
    double best_speedup = -1.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (points[i].accuracy + 1e-12 >= floor &&
            points[i].speedup > best_speedup) {
            best = i;
            best_speedup = points[i].speedup;
        }
    }
    if (best_speedup < 0.0) {
        // Nothing satisfies the loss budget: fall back to the most
        // accurate point (which should be the baseline set 0).
        best = static_cast<std::size_t>(
            std::max_element(points.begin(), points.end(),
                             [](const auto &a, const auto &b) {
                                 return a.accuracy < b.accuracy;
                             }) -
            points.begin());
    }
    return best;
}

std::size_t
selectBpa(const std::vector<OperatingPoint> &points)
{
    if (points.empty())
        throw std::invalid_argument("selectBpa: no points");

    std::size_t best = 0;
    double best_score = -1.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double score = points[i].speedup * points[i].accuracy;
        if (score > best_score) {
            best = i;
            best_score = score;
        }
    }
    return best;
}

std::size_t
selectForPreference(const std::vector<OperatingPoint> &points,
                    double min_accuracy)
{
    if (points.empty())
        throw std::invalid_argument("selectForPreference: no points");

    std::size_t best = points.size();
    double best_speedup = -1.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (points[i].accuracy >= min_accuracy &&
            points[i].speedup > best_speedup) {
            best = i;
            best_speedup = points[i].speedup;
        }
    }
    if (best == points.size()) {
        best = static_cast<std::size_t>(
            std::max_element(points.begin(), points.end(),
                             [](const auto &a, const auto &b) {
                                 return a.accuracy < b.accuracy;
                             }) -
            points.begin());
    }
    return best;
}

std::vector<ThresholdSet>
aoToBpaLadder(const std::vector<OperatingPoint> &points,
              double baseline_accuracy, double max_loss_pct)
{
    const std::size_t ao =
        selectAo(points, baseline_accuracy, max_loss_pct);
    const std::size_t bpa = selectBpa(points);

    std::vector<ThresholdSet> ladder;
    ladder.push_back(points[ao].set);
    for (std::size_t i = ao + 1; i <= bpa; ++i)
        ladder.push_back(points[i].set);
    return ladder;
}

} // namespace core
} // namespace mflstm
