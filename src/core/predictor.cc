#include "core/predictor.hh"

namespace mflstm {
namespace core {

LinkPredictor::LinkPredictor(std::size_t hidden_size, std::size_t bins)
    : hDist_(hidden_size, -1.0, 1.0, bins),
      // c_t is unbounded in principle but concentrates in a few units
      // of magnitude; clamp the histogram range accordingly.
      cDist_(hidden_size, -4.0, 4.0, bins)
{}

void
LinkPredictor::observe(const std::vector<nn::LstmCellTrace> &traces)
{
    for (const nn::LstmCellTrace &t : traces)
        observeLink(t.h, t.c);
}

void
LinkPredictor::observeLink(const tensor::Vector &h, const tensor::Vector &c)
{
    hDist_.observe(h);
    cDist_.observe(c);
}

} // namespace core
} // namespace mflstm
