#include "core/tissue.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mflstm {
namespace core {

std::vector<std::size_t>
formTissues(const std::vector<std::size_t> &sub_layer_lengths)
{
    if (sub_layer_lengths.empty())
        return {};

    const std::size_t longest =
        *std::max_element(sub_layer_lengths.begin(),
                          sub_layer_lengths.end());
    std::vector<std::size_t> tissues(longest, 0);
    for (std::size_t len : sub_layer_lengths) {
        for (std::size_t j = 0; j < len; ++j)
            ++tissues[j];
    }
    return tissues;
}

std::vector<std::size_t>
alignTissues(const std::vector<std::size_t> &sub_layer_lengths,
             std::size_t mts)
{
    if (mts == 0)
        throw std::invalid_argument("alignTissues: mts must be > 0");
    if (sub_layer_lengths.empty())
        return {};

    const std::size_t total =
        std::accumulate(sub_layer_lengths.begin(), sub_layer_lengths.end(),
                        std::size_t{0});
    const std::size_t longest =
        *std::max_element(sub_layer_lengths.begin(),
                          sub_layer_lengths.end());
    const std::size_t n_tissues = std::max(
        longest,
        static_cast<std::size_t>(std::ceil(
            static_cast<double>(total) / static_cast<double>(mts))));

    // Longest-remaining-first: each tissue takes one cell from the
    // sub-layers with the most unscheduled cells, up to mts cells. A
    // sub-layer with remaining == remaining tissue slots *must* be
    // served every round, which longest-first guarantees.
    std::vector<std::size_t> remaining = sub_layer_lengths;
    std::vector<std::size_t> tissues;
    tissues.reserve(n_tissues);

    for (std::size_t t = 0; t < n_tissues; ++t) {
        std::vector<std::size_t> order(remaining.size());
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return remaining[a] > remaining[b];
                         });

        std::size_t size = 0;
        for (std::size_t idx : order) {
            if (size == mts)
                break;
            if (remaining[idx] > 0) {
                --remaining[idx];
                ++size;
            }
        }
        if (size > 0)
            tissues.push_back(size);
    }

    // All cells must have been scheduled; the bound on n_tissues makes
    // this impossible to violate, so treat a leftover as a logic error.
    const std::size_t scheduled =
        std::accumulate(tissues.begin(), tissues.end(), std::size_t{0});
    if (scheduled != total)
        throw std::logic_error("alignTissues: schedule incomplete");
    return tissues;
}

MtsResult
findMts(const runtime::NetworkExecutor &executor,
        const runtime::LstmLayerShape &layer, std::size_t max_k,
        double skip_fraction)
{
    if (max_k == 0)
        throw std::invalid_argument("findMts: max_k must be > 0");

    MtsResult res;
    double best = 0.0;
    for (std::size_t k = 1; k <= std::min(max_k, layer.length); ++k) {
        runtime::ExecutionPlan plan;
        plan.kind = skip_fraction > 0.0 ? runtime::PlanKind::Combined
                                        : runtime::PlanKind::InterCell;

        runtime::LayerInterPlan inter;
        std::size_t left = layer.length;
        while (left > 0) {
            const std::size_t t = std::min(k, left);
            inter.tissueSizes.push_back(t);
            left -= t;
        }
        plan.inter = {inter};
        if (skip_fraction > 0.0)
            plan.intra = {{skip_fraction}};

        const runtime::RunReport report =
            executor.runLayer(layer, plan, 0);
        res.timesUs.push_back(report.result.timeUs);
        res.sharedUtilization.push_back(
            report.result.sharedUtilization);

        if (res.timesUs.size() == 1 || report.result.timeUs < best) {
            best = report.result.timeUs;
            res.mts = k;
        }
    }
    return res;
}

} // namespace core
} // namespace mflstm
