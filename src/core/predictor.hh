/**
 * @file
 * Context-link predictor (Section IV-B "Accuracy Recovery", Eq. 6).
 * Offline, the LSTM is executed on training data and the value
 * distribution of every element of the context link is collected; the
 * per-element expectation vector predicts the links lost at breakpoints.
 *
 * The paper predicts the context link h. The first cell of a sub-layer
 * also consumes the previous cell state c_{t-1} (Eq. 3); we collect and
 * predict it the same way — the natural extension of Eq. 6, documented
 * as a substitution in DESIGN.md.
 */

#ifndef MFLSTM_CORE_PREDICTOR_HH
#define MFLSTM_CORE_PREDICTOR_HH

#include <vector>

#include "nn/lstm.hh"
#include "tensor/stats.hh"

namespace mflstm {
namespace core {

/** Collected distributions + predicted link for one layer. */
class LinkPredictor
{
  public:
    /**
     * @param hidden_size  layer width.
     * @param bins         histogram resolution per element (Eq. 6 rho).
     */
    explicit LinkPredictor(std::size_t hidden_size, std::size_t bins = 64);

    /** Ingest every context link (h_t, c_t) of one forward trace. */
    void observe(const std::vector<nn::LstmCellTrace> &traces);

    /** Ingest a single link sample. */
    void observeLink(const tensor::Vector &h, const tensor::Vector &c);

    std::size_t samples() const { return hDist_.samples(); }

    /** Predicted context link: per-element expectation of h (Eq. 6). */
    tensor::Vector predictedH() const { return hDist_.expectation(); }

    /** Predicted cell state at a breakpoint. */
    tensor::Vector predictedC() const { return cDist_.expectation(); }

    /** Collected h_t distribution (persistence export/restore). */
    const tensor::VectorDistribution &hDistribution() const
    {
        return hDist_;
    }
    tensor::VectorDistribution &hDistribution() { return hDist_; }

    /** Collected c_t distribution (persistence export/restore). */
    const tensor::VectorDistribution &cDistribution() const
    {
        return cDist_;
    }
    tensor::VectorDistribution &cDistribution() { return cDist_; }

  private:
    tensor::VectorDistribution hDist_;
    tensor::VectorDistribution cDist_;
};

} // namespace core
} // namespace mflstm

#endif // MFLSTM_CORE_PREDICTOR_HH
