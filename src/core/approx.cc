#include "core/approx.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "quant/quantize.hh"
#include "tensor/activations.hh"
#include "tensor/ops.hh"

namespace mflstm {
namespace core {

nn::LstmState
lstmCellForwardDrs(const nn::LstmLayerParams &params, const Vector &x_proj,
                   const nn::LstmState &prev, double alpha_intra,
                   nn::SigmoidKind sk, std::size_t *skipped_rows,
                   DrsStatePolicy policy)
{
    const std::size_t hid = params.hiddenSize();
    assert(x_proj.size() == 4 * hid);

    auto sig = [sk](float v) {
        return sk == nn::SigmoidKind::Logistic ? tensor::sigmoid(v)
                                               : tensor::hardSigmoid(v);
    };

    // Algorithm 3 lines 4-5: the output gate first.
    Vector ro;
    tensor::gemv(params.uo, prev.h, ro);
    Vector o(hid);
    for (std::size_t j = 0; j < hid; ++j)
        o[j] = sig(x_proj[3 * hid + j] + ro[j] + params.bo[j]);

    // Line 6: rows whose o_t element is near zero are trivial.
    std::vector<std::uint32_t> skip;
    for (std::size_t j = 0; j < hid; ++j) {
        if (o[j] <= alpha_intra)
            skip.push_back(static_cast<std::uint32_t>(j));
    }
    if (skipped_rows)
        *skipped_rows = skip.size();

    // Line 7: Sgemv(U_{f,i,c}, h, R) — skipped rows are neither loaded
    // nor computed.
    Vector rf, ri, rc;
    tensor::gemvRowSkip(params.uf, prev.h, skip, rf);
    tensor::gemvRowSkip(params.ui, prev.h, skip, ri);
    tensor::gemvRowSkip(params.uc, prev.h, skip, rc);

    std::vector<std::uint8_t> skipped(hid, 0);
    for (std::uint32_t j : skip)
        skipped[j] = 1;

    // Line 8: the element-wise kernel. Under the default policy a
    // skipped row's recurrent products are simply zero (gemvRowSkip
    // already produced that), so the gates evaluate on the input
    // projection alone; under ZeroState the whole element is nulled.
    nn::LstmState next(hid);
    for (std::size_t j = 0; j < hid; ++j) {
        if (skipped[j] && policy == DrsStatePolicy::ZeroState) {
            next.c[j] = 0.0f;
            next.h[j] = 0.0f;
            continue;
        }
        const float f = sig(x_proj[j] + rf[j] + params.bf[j]);
        const float i = sig(x_proj[hid + j] + ri[j] + params.bi[j]);
        const float g =
            std::tanh(x_proj[2 * hid + j] + rc[j] + params.bc[j]);
        next.c[j] = f * prev.c[j] + i * g;
        next.h[j] = o[j] * std::tanh(next.c[j]);
    }
    return next;
}

ApproxRunner::ApproxRunner(const nn::LstmModel &model) : model_(model)
{
    const std::size_t hid = model.config().hiddenSize;
    rebuildRelevanceContexts();
    for (std::size_t l = 0; l < model.layers().size(); ++l)
        predictors_.emplace_back(hid);
    stats_.resize(model.layers().size());
}

void
ApproxRunner::rebuildRelevanceContexts()
{
    relevanceCtx_.clear();
    relevanceCtx_.reserve(activeModel().layers().size());
    for (const nn::LstmLayerParams &p : activeModel().layers())
        relevanceCtx_.emplace_back(p);
}

void
ApproxRunner::setQuantMode(quant::QuantMode mode)
{
    if (mode == quantMode_)
        return;
    quantMode_ = mode;
    if (mode == quant::QuantMode::Fp32) {
        qmodel_.reset();
    } else {
        qmodel_ = model_;
        quant::applyFakeQuant(*qmodel_, mode);
    }
    // The relevance norms are precomputed from the weight rows, so they
    // must follow the precision of the model actually served.
    rebuildRelevanceContexts();
}

void
ApproxRunner::calibrate(
    const std::vector<std::vector<std::int32_t>> &token_seqs)
{
    for (const auto &seq : token_seqs) {
        if (seq.empty())
            continue;
        std::vector<std::vector<nn::LstmCellTrace>> traces;
        activeModel().runLayers(activeModel().embed(seq), &traces);
        for (std::size_t l = 0; l < traces.size(); ++l)
            predictors_[l].observe(traces[l]);
    }
}

bool
ApproxRunner::calibrated() const
{
    return !predictors_.empty() && predictors_.front().samples() > 0;
}

void
ApproxRunner::setThresholds(double alpha_inter, double alpha_intra)
{
    if (alpha_inter < 0.0 || alpha_intra < 0.0 || alpha_intra >= 1.0)
        throw std::invalid_argument("setThresholds: out of range");
    if (alpha_inter > 0.0 && !calibrated())
        throw std::logic_error(
            "setThresholds: layer division needs calibrate() first "
            "(predicted links are undefined)");
    alphaInter_ = alpha_inter;
    alphaIntra_ = alpha_intra;
}

std::vector<Vector>
ApproxRunner::runLayers(const std::vector<Vector> &inputs)
{
    const nn::LstmModel &m = activeModel();
    const nn::SigmoidKind sk = m.config().sigmoid;
    std::vector<Vector> acts = inputs;

    for (std::size_t l = 0; l < m.layers().size(); ++l) {
        const nn::LstmLayerParams &p = m.layers()[l];
        LayerApproxStats &st = stats_[l];
        ++st.sequences;

        const std::vector<Vector> projs = nn::projectInputs(p, acts);

        // Inter-cell: find the weak links of this sequence.
        std::vector<std::uint8_t> is_break(projs.size(), 0);
        if (alphaInter_ > 0.0 && projs.size() > 1) {
            for (std::size_t t = 1; t < projs.size(); ++t) {
                ++st.links;
                const double s =
                    relevanceCtx_[l].relevance(p, projs[t]);
                if (s < alphaInter_) {
                    is_break[t] = 1;
                    ++st.breaks;
                }
            }
        }

        const Vector pred_h =
            alphaInter_ > 0.0 ? predictors_[l].predictedH() : Vector();
        const Vector pred_c =
            alphaInter_ > 0.0 ? predictors_[l].predictedC() : Vector();

        nn::LstmState state(p.hiddenSize());
        std::vector<Vector> outs;
        outs.reserve(projs.size());
        for (std::size_t t = 0; t < projs.size(); ++t) {
            if (is_break[t]) {
                // Breakpoint: the real link is severed; substitute the
                // predicted one (Fig. 8(a2)).
                state.h = pred_h;
                state.c = pred_c;
            }
            ++st.cells;
            if (alphaIntra_ > 0.0) {
                std::size_t skipped = 0;
                state = lstmCellForwardDrs(p, projs[t], state,
                                           alphaIntra_, sk, &skipped,
                                           drsPolicy_);
                st.skippedRows += static_cast<double>(skipped);
            } else {
                state = nn::lstmCellForward(p, projs[t], state, sk);
            }
            outs.push_back(state.h);
        }
        acts = std::move(outs);
    }
    return acts;
}

Vector
ApproxRunner::classify(std::span<const std::int32_t> tokens)
{
    assert(model_.config().task == nn::TaskKind::Classification);
    if (tokens.empty())
        throw std::invalid_argument("ApproxRunner::classify: empty");
    const std::vector<Vector> top = runLayers(activeModel().embed(tokens));
    return nn::linearForward(activeModel().head(), top.back());
}

std::vector<Vector>
ApproxRunner::lmLogits(std::span<const std::int32_t> tokens)
{
    assert(model_.config().task == nn::TaskKind::LanguageModel);
    const std::vector<Vector> top = runLayers(activeModel().embed(tokens));
    std::vector<Vector> logits;
    logits.reserve(top.size());
    for (const Vector &h : top)
        logits.push_back(nn::linearForward(activeModel().head(), h));
    return logits;
}

double
ApproxRunner::CalibrationProfile::relevanceQuantile(double q) const
{
    if (relevances.empty())
        return 0.0;
    const double pos =
        std::clamp(q, 0.0, 1.0) *
        static_cast<double>(relevances.size() - 1);
    return relevances[static_cast<std::size_t>(pos)];
}

double
ApproxRunner::CalibrationProfile::outputGateQuantile(double q) const
{
    if (outputGates.empty())
        return 0.0;
    const double pos = std::clamp(q, 0.0, 1.0) *
                       static_cast<double>(outputGates.size() - 1);
    return outputGates[static_cast<std::size_t>(pos)];
}

double
ApproxRunner::CalibrationProfile::layerBreakFraction(std::size_t l,
                                                     double alpha) const
{
    if (l >= layerRelevances.size() || layerRelevances[l].empty())
        return 0.0;
    const auto &xs = layerRelevances[l];
    const auto it = std::lower_bound(xs.begin(), xs.end(), alpha);
    return static_cast<double>(it - xs.begin()) /
           static_cast<double>(xs.size());
}

ApproxRunner::CalibrationProfile
ApproxRunner::profile(
    const std::vector<std::vector<std::int32_t>> &token_seqs) const
{
    const nn::LstmModel &m = activeModel();
    CalibrationProfile prof;
    prof.layerRelevances.resize(m.layers().size());
    const nn::SigmoidKind sk = m.config().sigmoid;

    for (const auto &seq : token_seqs) {
        if (seq.empty())
            continue;
        std::vector<Vector> acts = m.embed(seq);
        for (std::size_t l = 0; l < m.layers().size(); ++l) {
            const nn::LstmLayerParams &p = m.layers()[l];
            const std::vector<Vector> projs = nn::projectInputs(p, acts);

            for (std::size_t t = 1; t < projs.size(); ++t) {
                const double sv = relevanceCtx_[l].relevance(p, projs[t]);
                prof.relevances.push_back(sv);
                prof.layerRelevances[l].push_back(sv);
            }

            nn::LstmState state(p.hiddenSize());
            std::vector<Vector> outs;
            outs.reserve(projs.size());
            for (std::size_t t = 0; t < projs.size(); ++t) {
                nn::LstmCellTrace trace;
                state = nn::lstmCellForward(p, projs[t], state, sk,
                                            &trace);
                for (std::size_t j = 0; j < trace.o.size(); ++j)
                    prof.outputGates.push_back(trace.o[j]);
                outs.push_back(state.h);
            }
            acts = std::move(outs);
        }
    }
    std::sort(prof.relevances.begin(), prof.relevances.end());
    for (auto &xs : prof.layerRelevances)
        std::sort(xs.begin(), xs.end());
    std::sort(prof.outputGates.begin(), prof.outputGates.end());
    return prof;
}

void
ApproxRunner::resetStats()
{
    for (LayerApproxStats &st : stats_)
        st = LayerApproxStats{};
}

double
approxClassificationAccuracy(ApproxRunner &runner,
                             const std::vector<nn::Sample> &data)
{
    if (data.empty())
        return 0.0;
    std::size_t correct = 0;
    for (const nn::Sample &s : data) {
        const Vector logits = runner.classify(s.tokens);
        if (tensor::argmax(logits.span()) ==
            static_cast<std::size_t>(s.label)) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(data.size());
}

double
approxLmNextTokenAccuracy(
    ApproxRunner &runner,
    const std::vector<std::vector<std::int32_t>> &seqs)
{
    std::size_t correct = 0;
    std::size_t total = 0;
    for (const auto &seq : seqs) {
        if (seq.size() < 2)
            continue;
        const auto logits =
            runner.lmLogits(std::span(seq.data(), seq.size() - 1));
        for (std::size_t t = 0; t < logits.size(); ++t) {
            if (tensor::argmax(logits[t].span()) ==
                static_cast<std::size_t>(seq[t + 1])) {
                ++correct;
            }
            ++total;
        }
    }
    return total ? static_cast<double>(correct) /
                       static_cast<double>(total)
                 : 0.0;
}

} // namespace core
} // namespace mflstm
