/**
 * @file
 * Relevance value computation (Section IV-B, Algorithm 2) and breakpoint
 * search. The relevance value S quantifies how much the previous cell's
 * output h_{t-1} can influence the current cell's gates: per hidden
 * element, the possible range of each gate's pre-activation
 * (W x_t + U h_{t-1} + b with h_{t-1} in [-1,1]) is intersected with the
 * activation functions' sensitive area [-2, 2]; the overlaps are combined
 * through the cell dataflow (S_o gating S_f + S_i * S_c) and summed over
 * elements. S = 0 means the context link is dead and can be broken for
 * free; links with S below the threshold alpha_inter are "weak" and
 * selected as breakpoints.
 */

#ifndef MFLSTM_CORE_RELEVANCE_HH
#define MFLSTM_CORE_RELEVANCE_HH

#include <cstddef>
#include <vector>

#include "nn/gru.hh"
#include "nn/lstm.hh"
#include "tensor/matrix.hh"

namespace mflstm {
namespace core {

using tensor::Vector;

/**
 * Precomputed per-layer inputs of Algorithm 2 that depend only on the
 * weights: D_{f,i,c,o}[j] = sum_k |U_*[j][k]|, the half-width of the
 * possible contribution of h_{t-1} to gate pre-activation j. Computed
 * once per layer (offline; Algorithm 2 line 2).
 */
struct LayerRelevanceContext
{
    explicit LayerRelevanceContext(const nn::LstmLayerParams &params);

    /**
     * Relevance value S of the link feeding the cell whose input
     * projection is @p x_proj (the 4H vector W_{f,i,c,o} x_t, f/i/c/o
     * order, no bias). Algorithm 2 lines 3-8.
     */
    double relevance(const nn::LstmLayerParams &params,
                     const Vector &x_proj) const;

    Vector df, di, dc, dout;
};

/**
 * Relevance of each context link in a layer: element t (t >= 1) is S for
 * the link from cell t-1 into cell t. Element 0 is set to +infinity
 * (there is no link into the first cell to break).
 */
std::vector<double>
layerLinkRelevances(const nn::LstmLayerParams &params,
                    const std::vector<Vector> &x_projs);

/**
 * Breakpoint search: indices t whose incoming link has S < alpha_inter.
 * Breaking at t makes cell t the first cell of a new sub-layer.
 */
std::vector<std::size_t>
findBreakpoints(const std::vector<double> &relevances, double alpha_inter);

/**
 * GRU adaptation of Algorithm 2 (the paper's Section II-B "simple
 * adjustment"). The GRU's update gate z plays the combined role of the
 * LSTM's forget/input pair — z pinned at 0 means h_t = h_{t-1}
 * regardless of the candidate, z pinned at 1 means the candidate
 * replaces the state — so the per-element relevance combines the
 * sensitive-area overlaps as S^j = s_z * (s_r + s_h): the update gate
 * multiplies (it gates everything), the reset and candidate paths add.
 */
struct GruRelevanceContext
{
    explicit GruRelevanceContext(const nn::GruLayerParams &params);

    /** S for the link into the cell with 3H projection @p x_proj. */
    double relevance(const nn::GruLayerParams &params,
                     const Vector &x_proj) const;

    Vector dz, dr, dh;
};

/**
 * Sub-layer lengths induced by a breakpoint set over @p length cells
 * (Fig. 8(a1)). Sums to @p length; one entry when there are no breaks.
 */
std::vector<std::size_t>
subLayerLengths(std::size_t length,
                const std::vector<std::size_t> &breakpoints);

} // namespace core
} // namespace mflstm

#endif // MFLSTM_CORE_RELEVANCE_HH
