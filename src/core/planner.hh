/**
 * @file
 * Plan builder: projects the approximation statistics measured on the
 * (scaled) accuracy model onto the full Table II timing shape and emits
 * the runtime::ExecutionPlan — per-layer tissue schedules (division
 * rate -> sub-layer lengths -> aligned tissues under the MTS) and
 * per-layer DRS skip fractions.
 */

#ifndef MFLSTM_CORE_PLANNER_HH
#define MFLSTM_CORE_PLANNER_HH

#include <vector>

#include "core/approx.hh"
#include "runtime/plan.hh"

namespace mflstm {
namespace core {

/**
 * Evenly divide @p length cells into @p parts sub-layers (what the
 * measured break rate implies on the timing-shape sequence length).
 */
std::vector<std::size_t> evenSubLayers(std::size_t length,
                                       std::size_t parts);

/**
 * Build the execution plan for @p kind from per-layer stats.
 *
 * @param stats        one LayerApproxStats per layer, populated by an
 *                     ApproxRunner evaluation pass.
 * @param shape        full-size timing shape (Table II row).
 * @param mts          maximum tissue size from the offline sweep.
 * @param model_hidden hidden size of the accuracy model (to normalise
 *                     skippedRows into a fraction).
 */
runtime::ExecutionPlan
buildPlan(runtime::PlanKind kind,
          const std::vector<LayerApproxStats> &stats,
          const runtime::NetworkShape &shape, std::size_t mts,
          std::size_t model_hidden);

} // namespace core
} // namespace mflstm

#endif // MFLSTM_CORE_PLANNER_HH
