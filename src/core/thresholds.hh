/**
 * @file
 * The threshold tuning space (Section VI-C): the pair (alpha_inter,
 * alpha_intra), its per-application upper limits (Fig. 10 offline op 2),
 * the 11-point ladder swept in Fig. 19, and the AO / BPA / preference-
 * constrained operating-point selectors.
 */

#ifndef MFLSTM_CORE_THRESHOLDS_HH
#define MFLSTM_CORE_THRESHOLDS_HH

#include <cstddef>
#include <vector>

#include "core/approx.hh"
#include "quant/qformat.hh"

namespace mflstm {
namespace core {

/** One point in the tuning space. */
struct ThresholdSet
{
    double alphaInter = 0.0;
    double alphaIntra = 0.0;
    /**
     * Weight precision served at this point (DESIGN.md §12) — the third
     * axis of the tuning space. Like the alphas it trades accuracy for
     * memory time, so AO/BPA selection and the serving governor handle
     * it uniformly: accuracy is measured through a fake-quantized model
     * and AO still means <= 2% end-to-end loss.
     */
    quant::QuantMode quant = quant::QuantMode::Fp32;

    bool operator==(const ThresholdSet &) const = default;
};

/** Per-application threshold upper limits. */
struct ThresholdLimits
{
    double maxInter = 0.0;  ///< alpha_inter upper limit
    double maxIntra = 0.0;  ///< alpha_intra upper limit
    /// link fraction broken at maxInter (diagnostic / ladder spacing)
    double maxBreakFraction = 0.0;
    /// row fraction skipped at maxIntra
    double maxSkipFraction = 0.0;
};

/**
 * Derive the upper limits from a calibration profile:
 *
 *  - maxInter follows the paper's empirical procedure (Fig. 10 op 2):
 *    sweep candidate thresholds over the observed relevance
 *    distribution and keep the *smallest* one whose projected tissue
 *    count (per-layer break rates -> sub-layers -> aligned tissues
 *    under the MTS) reaches the achievable minimum — beyond it, a
 *    larger threshold cannot reduce the tissue count below Eq. 7's
 *    N_min and only costs accuracy;
 *
 *  - maxIntra is the o_t quantile at @p max_skip_cap: skipping more
 *    rows than that has no memory-time left to save (the split U_o
 *    Sgemv becomes the floor).
 */
ThresholdLimits
findThresholdLimits(const ApproxRunner::CalibrationProfile &profile,
                    std::size_t mts, std::size_t sequence_length,
                    double max_skip_cap = 0.75);

/**
 * Projected total tissue count of the whole network at one alpha_inter:
 * per layer, the profile's break fraction scaled to the timing-shape
 * length, evenly divided into sub-layers and aligned under the MTS.
 */
std::size_t
projectedTissueCount(const ApproxRunner::CalibrationProfile &profile,
                     double alpha_inter, std::size_t mts,
                     std::size_t sequence_length);

/**
 * The Fig. 19 ladder: @p count threshold sets increasing from 0 (set 0 =
 * baseline, no accuracy loss) to the limits (last set = most
 * aggressive). Because both the relevance values and the output-gate
 * values concentrate near their saturation points in trained LSTMs, the
 * intermediate sets are spaced by *quantile* (equal increments of broken
 * links / skipped rows), which keeps every rung of the ladder
 * behaviourally distinct while the threshold values themselves still
 * increase monotonically.
 */
std::vector<ThresholdSet>
thresholdLadder(const ApproxRunner::CalibrationProfile &profile,
                const ThresholdLimits &limits, std::size_t count = 11);

/** One evaluated point of the trade-off curve. */
struct OperatingPoint
{
    std::size_t index = 0;  ///< ladder position
    ThresholdSet set;
    double speedup = 1.0;
    double accuracy = 0.0;  ///< absolute accuracy, [0,1]
};

/**
 * AO (accuracy-oriented): the fastest point whose accuracy loss vs
 * @p baseline_accuracy stays within @p max_loss_pct percent (the paper's
 * user-imperceptible 2%). Returns index into @p points.
 */
std::size_t selectAo(const std::vector<OperatingPoint> &points,
                     double baseline_accuracy, double max_loss_pct = 2.0);

/** BPA (best performance-accuracy): maximises speedup x accuracy. */
std::size_t selectBpa(const std::vector<OperatingPoint> &points);

/**
 * Preference-constrained selection (the building block of the UO
 * scheme): fastest point with accuracy >= @p min_accuracy; falls back
 * to the most accurate point when none qualifies.
 */
std::size_t selectForPreference(const std::vector<OperatingPoint> &points,
                                double min_accuracy);

/**
 * The serving governor's degradation ladder: threshold sets from the
 * AO point (inclusive) to the BPA point (inclusive) in ladder order,
 * so rung 0 is the accuracy-oriented operating point and the last rung
 * the best performance-accuracy one. When BPA is not more aggressive
 * than AO the ladder collapses to {AO} (nothing to degrade into).
 */
std::vector<ThresholdSet>
aoToBpaLadder(const std::vector<OperatingPoint> &points,
              double baseline_accuracy, double max_loss_pct = 2.0);

} // namespace core
} // namespace mflstm

#endif // MFLSTM_CORE_THRESHOLDS_HH
