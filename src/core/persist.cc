#include "core/persist.hh"

#include <cmath>

#include "quant/quantize.hh"

namespace mflstm {
namespace core {

namespace {

using io::ArtifactError;
using io::ErrorKind;

constexpr std::uint32_t kCalibrationSchemaVersion = 1;
constexpr std::uint32_t kChunkFingerprint = io::fourcc('C', 'F', 'P', 'R');
constexpr std::uint32_t kChunkCalibration = io::fourcc('C', 'C', 'A', 'L');

std::uint32_t
predictorHTag(std::size_t l)
{
    return io::indexedTag('P', 'H', l);
}

std::uint32_t
predictorCTag(std::size_t l)
{
    return io::indexedTag('P', 'C', l);
}

/** The dimensions half of the fingerprint. */
struct ModelFingerprint
{
    std::uint32_t task = 0;
    std::uint64_t vocab = 0;
    std::uint64_t embedSize = 0;
    std::uint64_t hiddenSize = 0;
    std::uint64_t numLayers = 0;
    std::uint64_t numClasses = 0;
    std::uint32_t sigmoid = 0;
    std::uint32_t weightsCrc = 0;

    bool operator==(const ModelFingerprint &) const = default;
};

ModelFingerprint
fingerprintOf(const nn::LstmModel &model)
{
    const nn::ModelConfig &cfg = model.config();
    ModelFingerprint fp;
    fp.task = cfg.task == nn::TaskKind::LanguageModel ? 1 : 0;
    fp.vocab = cfg.vocab;
    fp.embedSize = cfg.embedSize;
    fp.hiddenSize = cfg.hiddenSize;
    fp.numLayers = cfg.numLayers;
    fp.numClasses = cfg.numClasses;
    fp.sigmoid = cfg.sigmoid == nn::SigmoidKind::Hard ? 1 : 0;
    fp.weightsCrc = modelWeightsCrc(model);
    return fp;
}

void
writeFingerprint(io::ByteWriter &w, const ModelFingerprint &fp)
{
    w.u32(fp.task);
    w.u64(fp.vocab);
    w.u64(fp.embedSize);
    w.u64(fp.hiddenSize);
    w.u64(fp.numLayers);
    w.u64(fp.numClasses);
    w.u32(fp.sigmoid);
    w.u32(fp.weightsCrc);
}

ModelFingerprint
readFingerprint(io::ByteReader &r)
{
    ModelFingerprint fp;
    fp.task = r.u32();
    fp.vocab = r.u64();
    fp.embedSize = r.u64();
    fp.hiddenSize = r.u64();
    fp.numLayers = r.u64();
    fp.numClasses = r.u64();
    fp.sigmoid = r.u32();
    fp.weightsCrc = r.u32();
    r.expectEnd();
    return fp;
}

void
writeDistribution(io::ByteWriter &w,
                  const tensor::VectorDistribution &dist)
{
    w.u64(dist.dim());
    const std::size_t bins = dist.dim() ? dist.element(0).bins() : 0;
    w.u64(bins);
    w.f64(dist.dim() ? dist.element(0).lo() : 0.0);
    w.f64(dist.dim() ? dist.element(0).hi() : 0.0);
    std::vector<std::uint64_t> counts;
    counts.reserve(dist.dim() * bins);
    for (std::size_t i = 0; i < dist.dim(); ++i)
        for (std::size_t b = 0; b < bins; ++b)
            counts.push_back(dist.element(i).binCount(b));
    w.u64Array(counts);
}

/** Parsed distribution payload, validated against the live @p dist. */
std::vector<std::uint64_t>
readDistribution(io::ByteReader &r, const tensor::VectorDistribution &dist,
                 const std::string &path, const char *what)
{
    const std::uint64_t dim = r.u64();
    const std::uint64_t bins = r.u64();
    const double lo = r.f64();
    const double hi = r.f64();
    const std::vector<std::uint64_t> counts = r.u64Array();
    r.expectEnd();

    const std::size_t live_bins =
        dist.dim() ? dist.element(0).bins() : 0;
    if (dim != dist.dim() || bins != live_bins ||
        lo != (dist.dim() ? dist.element(0).lo() : 0.0) ||
        hi != (dist.dim() ? dist.element(0).hi() : 0.0))
        throw ArtifactError(
            ErrorKind::Stale,
            "loadCalibration: " + path + ": " + what +
                " histogram shape does not match this model");
    if (counts.size() != io::checkedMul(dim, bins, what))
        throw ArtifactError(ErrorKind::Malformed,
                            "loadCalibration: " + path + ": " + what +
                                " count array has the wrong length");
    return counts;
}

void
applyDistribution(tensor::VectorDistribution &dist,
                  const std::vector<std::uint64_t> &counts)
{
    const std::size_t bins = dist.dim() ? dist.element(0).bins() : 0;
    for (std::size_t i = 0; i < dist.dim(); ++i)
        dist.restoreElementCounts(
            i, std::span<const std::uint64_t>(counts)
                   .subspan(i * bins, bins));
}

void
writeCalibrationChunk(io::ByteWriter &w,
                      const MemoryFriendlyLstm::Calibration &cal)
{
    w.u64(cal.mts);
    w.u64(cal.mtsSweep.mts);
    w.f64Array(cal.mtsSweep.timesUs);
    w.f64Array(cal.mtsSweep.sharedUtilization);
    w.f64(cal.limits.maxInter);
    w.f64(cal.limits.maxIntra);
    w.f64(cal.limits.maxBreakFraction);
    w.f64(cal.limits.maxSkipFraction);
    w.f64Array(cal.profile.relevances);
    w.u64(cal.profile.layerRelevances.size());
    for (const std::vector<double> &lr : cal.profile.layerRelevances)
        w.f64Array(lr);
    w.f32Array(cal.profile.outputGates);
}

MemoryFriendlyLstm::Calibration
readCalibrationChunk(io::ByteReader &r, const io::ArtifactLimits &limits,
                     const std::string &path)
{
    MemoryFriendlyLstm::Calibration cal;
    cal.mts = static_cast<std::size_t>(r.u64());
    cal.mtsSweep.mts = static_cast<std::size_t>(r.u64());
    cal.mtsSweep.timesUs = r.f64Array();
    cal.mtsSweep.sharedUtilization = r.f64Array();
    cal.limits.maxInter = r.f64();
    cal.limits.maxIntra = r.f64();
    cal.limits.maxBreakFraction = r.f64();
    cal.limits.maxSkipFraction = r.f64();
    cal.profile.relevances = r.f64Array();
    const std::uint64_t layer_count = r.u64();
    if (layer_count > limits.maxDim)
        throw ArtifactError(ErrorKind::LimitExceeded,
                            "loadCalibration: " + path +
                                ": absurd layer count " +
                                std::to_string(layer_count));
    cal.profile.layerRelevances.reserve(
        static_cast<std::size_t>(layer_count));
    for (std::uint64_t l = 0; l < layer_count; ++l)
        cal.profile.layerRelevances.push_back(r.f64Array());
    cal.profile.outputGates = r.f32Array();
    r.expectEnd();

    if (cal.mts == 0)
        throw ArtifactError(ErrorKind::Malformed,
                            "loadCalibration: " + path + ": mts = 0");
    const auto finite = [&](double v, const char *what) {
        if (!std::isfinite(v))
            throw ArtifactError(ErrorKind::NonFinite,
                                "loadCalibration: " + path +
                                    ": non-finite " + what);
    };
    finite(cal.limits.maxInter, "maxInter");
    finite(cal.limits.maxIntra, "maxIntra");
    finite(cal.limits.maxBreakFraction, "maxBreakFraction");
    finite(cal.limits.maxSkipFraction, "maxSkipFraction");
    for (double v : cal.profile.relevances)
        finite(v, "relevance value");
    for (const auto &lr : cal.profile.layerRelevances)
        for (double v : lr)
            finite(v, "layer relevance value");
    for (float v : cal.profile.outputGates)
        finite(v, "output-gate value");
    return cal;
}

} // anonymous namespace

std::uint32_t
modelWeightsCrc(const nn::LstmModel &model)
{
    // Single definition of the fingerprint algorithm — quantized
    // artifacts (quant/serialize.hh) fingerprint their fp32 source
    // with the same bytes, so the two layers must never diverge.
    return quant::modelWeightsCrc(model);
}

void
saveCalibration(const MemoryFriendlyLstm &mf, const std::string &path)
{
    const MemoryFriendlyLstm::Calibration &cal = mf.calibration();
    const ApproxRunner &runner = mf.runner();

    io::ArtifactWriter w(io::kSchemaCalibration,
                         kCalibrationSchemaVersion);
    writeFingerprint(w.chunk(kChunkFingerprint),
                     fingerprintOf(runner.model()));
    writeCalibrationChunk(w.chunk(kChunkCalibration), cal);
    for (std::size_t l = 0; l < runner.predictors().size(); ++l) {
        const LinkPredictor &p = runner.predictors()[l];
        writeDistribution(w.chunk(predictorHTag(l)), p.hDistribution());
        writeDistribution(w.chunk(predictorCTag(l)), p.cDistribution());
    }
    w.commit(path);
}

void
loadCalibration(MemoryFriendlyLstm &mf, const std::string &path,
                const io::ArtifactLimits &limits, obs::Observer *obs)
{
    try {
        const io::ArtifactReader reader(path, io::kSchemaCalibration,
                                        limits);
        if (reader.schemaVersion() != kCalibrationSchemaVersion)
            throw ArtifactError(
                ErrorKind::BadVersion,
                "loadCalibration: " + path +
                    ": unsupported calibration schema version " +
                    std::to_string(reader.schemaVersion()));

        ApproxRunner &runner = mf.runner();
        {
            io::ByteReader r = reader.chunk(kChunkFingerprint);
            const ModelFingerprint stored = readFingerprint(r);
            if (stored != fingerprintOf(runner.model()))
                throw ArtifactError(
                    ErrorKind::Stale,
                    "loadCalibration: " + path +
                        ": calibration belongs to a different model "
                        "(fingerprint mismatch)");
        }

        io::ByteReader cr = reader.chunk(kChunkCalibration);
        MemoryFriendlyLstm::Calibration cal =
            readCalibrationChunk(cr, limits, path);

        // Parse + validate every predictor payload before mutating the
        // runner, so a failure cannot leave it half-restored.
        std::vector<std::vector<std::uint64_t>> h_counts, c_counts;
        for (std::size_t l = 0; l < runner.predictors().size(); ++l) {
            const LinkPredictor &p = runner.predictors()[l];
            io::ByteReader hr = reader.chunk(predictorHTag(l));
            h_counts.push_back(readDistribution(hr, p.hDistribution(),
                                                path, "h-link"));
            io::ByteReader rr = reader.chunk(predictorCTag(l));
            c_counts.push_back(readDistribution(rr, p.cDistribution(),
                                                path, "c-link"));
        }

        for (std::size_t l = 0; l < runner.predictors().size(); ++l) {
            LinkPredictor &p = runner.predictors()[l];
            applyDistribution(p.hDistribution(), h_counts[l]);
            applyDistribution(p.cDistribution(), c_counts[l]);
        }
        mf.restoreCalibration(cal);
    } catch (const ArtifactError &e) {
        io::recordRejection(obs, e.kind());
        throw;
    }
}

void
verifyCalibrationFile(const std::string &path,
                      const io::ArtifactLimits &limits)
{
    const io::ArtifactReader reader(path, io::kSchemaCalibration,
                                    limits);
    if (reader.schemaVersion() != kCalibrationSchemaVersion)
        throw ArtifactError(ErrorKind::BadVersion,
                            "verifyCalibrationFile: " + path +
                                ": unsupported schema version");

    io::ByteReader fr = reader.chunk(kChunkFingerprint);
    const ModelFingerprint fp = readFingerprint(fr);

    io::ByteReader cr = reader.chunk(kChunkCalibration);
    (void)readCalibrationChunk(cr, limits, path);

    // Every predictor chunk must parse and agree with the fingerprint's
    // layer count and hidden size.
    for (std::uint64_t l = 0; l < fp.numLayers; ++l) {
        for (std::uint32_t tag : {predictorHTag(l), predictorCTag(l)}) {
            io::ByteReader r = reader.chunk(tag);
            const std::uint64_t dim = r.u64();
            const std::uint64_t bins = r.u64();
            (void)r.f64();
            (void)r.f64();
            const std::vector<std::uint64_t> counts = r.u64Array();
            r.expectEnd();
            if (dim != fp.hiddenSize ||
                counts.size() != io::checkedMul(dim, bins, "predictor"))
                throw ArtifactError(
                    ErrorKind::Malformed,
                    "verifyCalibrationFile: " + path +
                        ": predictor chunk inconsistent with "
                        "fingerprint");
        }
    }
}

} // namespace core
} // namespace mflstm
