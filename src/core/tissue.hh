/**
 * @file
 * LSTM layer reorganization (Section IV-C): tissue formation — fusing
 * one cell per independent sub-layer into a concurrently executed tissue
 * — and tissue alignment, which rebalances fat/thin tissues so every
 * tissue size is at most the maximum tissue size (MTS) imposed by the
 * on-chip bandwidth. Also the MTS finder (Fig. 10, offline op 1), which
 * sweeps tissue sizes on the target GPU and picks the performance peak
 * of Fig. 9.
 */

#ifndef MFLSTM_CORE_TISSUE_HH
#define MFLSTM_CORE_TISSUE_HH

#include <cstddef>
#include <vector>

#include "runtime/executor.hh"
#include "runtime/plan.hh"

namespace mflstm {
namespace core {

/**
 * Plain tissue formation (Fig. 8(b1)): tissue j contains the j-th cell
 * of every sub-layer long enough — so the tissue sizes are the
 * "column heights" of the sub-layer length multiset. Ignores the MTS.
 *
 * @return tissue sizes in execution order (non-increasing).
 */
std::vector<std::size_t>
formTissues(const std::vector<std::size_t> &sub_layer_lengths);

/**
 * Tissue alignment (Fig. 8(b2)): rebalance cells so no tissue exceeds
 * @p mts while preserving every sub-layer's internal order (a sub-layer
 * contributes at most one cell per tissue, in sequence). Uses the
 * longest-remaining-first schedule over
 * N = max(max sub-layer length, ceil(total / mts)) tissues, which is
 * feasible and yields the minimal tissue count N_min of Eq. 7 whenever
 * the division permits it.
 *
 * @return tissue sizes in execution order; sums to the total cells.
 */
std::vector<std::size_t>
alignTissues(const std::vector<std::size_t> &sub_layer_lengths,
             std::size_t mts);

/** Result of the offline MTS sweep. */
struct MtsResult
{
    std::size_t mts = 1;
    /// per sweep point: layer wall time (microseconds)
    std::vector<double> timesUs;
    /// per sweep point: shared-memory bandwidth utilisation
    std::vector<double> sharedUtilization;
};

/**
 * Offline MTS determination (Fig. 10 op 1): execute one layer with
 * uniform tissue sizes 1..max_k on the target GPU and return the
 * fastest point. @p skip_fraction lets the combined scheme account for
 * DRS's on-chip traffic relief, which extends the MTS.
 */
MtsResult findMts(const runtime::NetworkExecutor &executor,
                  const runtime::LstmLayerShape &layer,
                  std::size_t max_k = 12, double skip_fraction = 0.0);

} // namespace core
} // namespace mflstm

#endif // MFLSTM_CORE_TISSUE_HH
