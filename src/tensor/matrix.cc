#include "tensor/matrix.hh"

#include <algorithm>
#include <stdexcept>

namespace mflstm {
namespace tensor {

Matrix
vconcat(const std::vector<const Matrix *> &parts)
{
    if (parts.empty())
        return {};

    const std::size_t cols = parts.front()->cols();
    std::size_t rows = 0;
    for (const Matrix *part : parts) {
        if (part->cols() != cols)
            throw std::invalid_argument("vconcat: column mismatch");
        rows += part->rows();
    }

    Matrix out(rows, cols);
    std::size_t r = 0;
    for (const Matrix *part : parts) {
        std::copy(part->data(), part->data() + part->size(),
                  out.data() + r * cols);
        r += part->rows();
    }
    return out;
}

Matrix
rowSlice(const Matrix &m, std::size_t row_begin, std::size_t row_end)
{
    if (row_begin > row_end || row_end > m.rows())
        throw std::out_of_range("rowSlice: bad range");

    Matrix out(row_end - row_begin, m.cols());
    std::copy(m.data() + row_begin * m.cols(),
              m.data() + row_end * m.cols(), out.data());
    return out;
}

} // namespace tensor
} // namespace mflstm
