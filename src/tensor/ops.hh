/**
 * @file
 * BLAS-style dense kernels. These are the CPU-side functional equivalents
 * of the GPU kernels the paper lowers LSTM layers onto (Sgemv, Sgemm and
 * the element-wise kernel), plus the row-skipping GEMV variant that
 * Dynamic Row Skip (Algorithm 3, line 7) requires.
 */

#ifndef MFLSTM_TENSOR_OPS_HH
#define MFLSTM_TENSOR_OPS_HH

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hh"

namespace mflstm {
namespace tensor {

/** y = A * x. A is rows x cols; x has cols elements; y has rows. */
void gemv(const Matrix &a, const Vector &x, Vector &y);

/** y = A * x + b. */
void gemv(const Matrix &a, const Vector &x, const Vector &b, Vector &y);

/**
 * Row-skipping GEMV: y[r] = (A * x)[r] for rows not in the skip set,
 * y[r] = 0 for skipped rows. This is the functional contract of
 * Sgemv(U_{f,i,c}, h, R) in Algorithm 3: skipped rows are neither loaded
 * nor computed, and their outputs are approximated as zero (pre-bias the
 * caller must not re-add).
 *
 * @param skip  sorted or unsorted list of row indices to skip.
 */
void gemvRowSkip(const Matrix &a, const Vector &x,
                 const std::vector<std::uint32_t> &skip, Vector &y);

/** y = A^T * x. A is rows x cols; x has rows elements; y has cols. */
void gemvT(const Matrix &a, const Vector &x, Vector &y);

/** Rank-1 update A += alpha * x * y^T (BLAS ger). Used by BPTT. */
void ger(float alpha, const Vector &x, const Vector &y, Matrix &a);

/** C = A * B. A is m x k, B is k x n, C is m x n. Blocked for locality. */
void gemm(const Matrix &a, const Matrix &b, Matrix &c);

/**
 * C = A * B + bias broadcast down columns: C[r][j] += bias[r]. This is the
 * per-tissue Sgemm(U, H_t) of Section IV-D where every cell in the tissue
 * shares the bias vector.
 */
void gemmBias(const Matrix &a, const Matrix &b, const Vector &bias,
              Matrix &c);

/** out[i] = a[i] + b[i]. */
void add(std::span<const float> a, std::span<const float> b,
         std::span<float> out);

/** out[i] = a[i] * b[i] (Hadamard product). */
void hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out);

/** y[i] += alpha * x[i]. */
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/** Sum of |a[i]| for one span. Used by Algorithm 2 line 2. */
float sumAbs(std::span<const float> a);

/** Per-row sum of absolute values: D[r] = sum_c |A[r][c]|. */
Vector rowAbsSums(const Matrix &a);

/** Dot product. */
float dot(std::span<const float> a, std::span<const float> b);

/** Index of the maximum element (first on ties). */
std::size_t argmax(std::span<const float> a);

/** L2 norm. */
float norm2(std::span<const float> a);

/** Mean absolute difference between two equal-size spans. */
float meanAbsDiff(std::span<const float> a, std::span<const float> b);

} // namespace tensor
} // namespace mflstm

#endif // MFLSTM_TENSOR_OPS_HH
