#include "tensor/activations.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mflstm {
namespace tensor {

float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

float
hardSigmoid(float x)
{
    return std::clamp(0.25f * x + 0.5f, 0.0f, 1.0f);
}

float
tanhAct(float x)
{
    return std::tanh(x);
}

float
sigmoidGradFromOutput(float s)
{
    return s * (1.0f - s);
}

float
tanhGradFromOutput(float t)
{
    return 1.0f - t * t;
}

void
sigmoidInplace(std::span<float> x)
{
    for (float &v : x)
        v = sigmoid(v);
}

void
hardSigmoidInplace(std::span<float> x)
{
    for (float &v : x)
        v = hardSigmoid(v);
}

void
tanhInplace(std::span<float> x)
{
    for (float &v : x)
        v = std::tanh(v);
}

bool
intervalInsensitive(float lo, float hi)
{
    assert(lo <= hi);
    return hi <= -kSensitiveBound || lo >= kSensitiveBound;
}

float
sensitiveOverlap(float lo, float hi)
{
    assert(lo <= hi);
    const float a = std::max(lo, -kSensitiveBound);
    const float b = std::min(hi, kSensitiveBound);
    return std::max(0.0f, b - a);
}

} // namespace tensor
} // namespace mflstm
