/**
 * @file
 * Activation functions for the LSTM cell (Eq. 1-5) plus the sensitive /
 * insensitive area analysis of Section IV-A. The paper's inter-cell
 * optimisation hinges on the observation that sigmoid and tanh are
 * effectively constant outside the input range [-2, 2]; the boundary
 * constants live here so the relevance computation (Algorithm 2) and the
 * tests agree on them.
 */

#ifndef MFLSTM_TENSOR_ACTIVATIONS_HH
#define MFLSTM_TENSOR_ACTIVATIONS_HH

#include <span>

namespace mflstm {
namespace tensor {

/**
 * Half-width of the sensitive area of sigmoid/tanh (Fig. 7): inputs in
 * [-kSensitiveBound, kSensitiveBound] are treated as sensitive; outside,
 * the activation output is insensitive to the input. The paper uses 2 for
 * both functions and notes the same boundary fits the hard sigmoid.
 */
constexpr float kSensitiveBound = 2.0f;

/** Logistic sigmoid. */
float sigmoid(float x);

/**
 * Piecewise-linear hard sigmoid, clamp(0.25 x + 0.5, 0, 1), the
 * Theano-style approximation referenced in Section IV-A.
 */
float hardSigmoid(float x);

/** Hyperbolic tangent (thin wrapper so all activations share a home). */
float tanhAct(float x);

/** Derivative of sigmoid expressed in terms of its output s. */
float sigmoidGradFromOutput(float s);

/** Derivative of tanh expressed in terms of its output t. */
float tanhGradFromOutput(float t);

/** Apply sigmoid elementwise. */
void sigmoidInplace(std::span<float> x);

/** Apply hard sigmoid elementwise. */
void hardSigmoidInplace(std::span<float> x);

/** Apply tanh elementwise. */
void tanhInplace(std::span<float> x);

/**
 * True when the whole interval [lo, hi] lies in the insensitive area of
 * sigmoid/tanh, i.e. the activation output there is (nearly) constant.
 */
bool intervalInsensitive(float lo, float hi);

/**
 * Length of the overlap between [lo, hi] and the sensitive area
 * [-kSensitiveBound, kSensitiveBound]. Zero means the activation is
 * insensitive over the whole interval. This is the primitive Algorithm 2
 * lines 4-5 compute.
 */
float sensitiveOverlap(float lo, float hi);

} // namespace tensor
} // namespace mflstm

#endif // MFLSTM_TENSOR_ACTIVATIONS_HH
