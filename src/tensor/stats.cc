#include "tensor/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace mflstm {
namespace tensor {

void
RunningStat::add(double x)
{
    ++count_;
    if (count_ == 1) {
        mean_ = min_ = max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    if (bins == 0 || hi <= lo)
        throw std::invalid_argument("Histogram: bad range or bin count");
}

void
Histogram::add(double x)
{
    auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++samples_;
}

double
Histogram::binCenter(std::size_t i) const
{
    assert(i < counts_.size());
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double
Histogram::probability(std::size_t i) const
{
    assert(i < counts_.size());
    if (samples_ == 0)
        return 0.0;
    return static_cast<double>(counts_[i]) /
           static_cast<double>(samples_);
}

double
Histogram::expectation() const
{
    double acc = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        acc += binCenter(i) * probability(i);
    return acc;
}

std::uint64_t
Histogram::binCount(std::size_t i) const
{
    assert(i < counts_.size());
    return static_cast<std::uint64_t>(counts_[i]);
}

void
Histogram::restoreCounts(std::span<const std::uint64_t> counts)
{
    if (counts.size() != counts_.size())
        throw std::invalid_argument(
            "Histogram::restoreCounts: bin count mismatch");
    samples_ = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        counts_[i] = static_cast<std::size_t>(counts[i]);
        samples_ += counts_[i];
    }
}

VectorDistribution::VectorDistribution(std::size_t dim, double lo,
                                       double hi, std::size_t bins)
{
    elements_.reserve(dim);
    for (std::size_t i = 0; i < dim; ++i)
        elements_.emplace_back(lo, hi, bins);
}

void
VectorDistribution::observe(const Vector &v)
{
    if (v.size() != elements_.size())
        throw std::invalid_argument("VectorDistribution: dim mismatch");
    for (std::size_t i = 0; i < v.size(); ++i)
        elements_[i].add(v[i]);
    ++samples_;
}

void
VectorDistribution::restoreElementCounts(
    std::size_t i, std::span<const std::uint64_t> counts)
{
    if (i >= elements_.size())
        throw std::invalid_argument(
            "VectorDistribution::restoreElementCounts: bad element");
    elements_[i].restoreCounts(counts);
    samples_ = elements_.front().samples();
}

Vector
VectorDistribution::expectation() const
{
    Vector out(elements_.size());
    for (std::size_t i = 0; i < elements_.size(); ++i)
        out[i] = static_cast<float>(elements_[i].expectation());
    return out;
}

} // namespace tensor
} // namespace mflstm
