/**
 * @file
 * Deterministic random number generation. Every stochastic component of
 * the reproduction (weight init, synthetic datasets, the user-study
 * population) draws from an explicitly seeded Rng so experiments are
 * reproducible bit-for-bit.
 */

#ifndef MFLSTM_TENSOR_RNG_HH
#define MFLSTM_TENSOR_RNG_HH

#include <cstdint>
#include <random>

#include "tensor/matrix.hh"

namespace mflstm {
namespace tensor {

/** Seeded pseudo-random source with the draw helpers the repo needs. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Uniform float in [lo, hi). */
    float uniform(float lo, float hi);

    /** Standard normal scaled by stddev around mean. */
    float normal(float mean, float stddev);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t integer(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw. */
    bool chance(double p);

    /** Fill a vector with N(mean, stddev). */
    void fillNormal(Vector &v, float mean, float stddev);

    /** Fill a matrix with N(mean, stddev). */
    void fillNormal(Matrix &m, float mean, float stddev);

    /** Fill a matrix with U(lo, hi). */
    void fillUniform(Matrix &m, float lo, float hi);

    /**
     * Xavier/Glorot uniform initialisation: U(-b, b) with
     * b = sqrt(6 / (fan_in + fan_out)). Keeps pre-activation magnitudes in
     * the sensitive area early in training, which is what makes the
     * relevance analysis of Section IV-A meaningful.
     */
    void fillXavier(Matrix &m, std::size_t fan_in, std::size_t fan_out);

    /** Derive an independent child generator (for parallel components). */
    Rng fork();

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace tensor
} // namespace mflstm

#endif // MFLSTM_TENSOR_RNG_HH
