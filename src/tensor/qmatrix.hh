/**
 * @file
 * Quantized weight container + reference kernels (DESIGN.md §12).
 *
 * A QuantizedMatrix holds the integer codes of a symmetric per-row
 * quantization: row r stores q[r][c] = clamp(round(w[r][c]/s_r), ±qmax)
 * with s_r = absmax(row r)/qmax. The GEMV/GEMM kernels dequantize
 * in-register — the per-row scale is hoisted out of the inner loop, the
 * int code is widened to float inside it — which is the functional
 * contract of the fused dequant+FMA the mobile-GPU kernels would run.
 *
 * Error bound (the one tests assert): |w - s_r*q| <= s_r/2, so one
 * GEMV output obeys |y_q[r] - y[r]| <= (s_r/2) * sum_j |x_j|.
 */

#ifndef MFLSTM_TENSOR_QMATRIX_HH
#define MFLSTM_TENSOR_QMATRIX_HH

#include <cstdint>
#include <vector>

#include "quant/qformat.hh"
#include "tensor/matrix.hh"

namespace mflstm {
namespace tensor {

class QuantizedMatrix
{
  public:
    QuantizedMatrix() = default;

    /** Symmetric per-row quantization of @p m. Fp32 mode is invalid. */
    static QuantizedMatrix quantize(const Matrix &m, quant::QuantMode mode);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    quant::QuantMode mode() const { return mode_; }

    /** Dequantization scale of row @p r (absmax/qmax; 1.0 for a zero row). */
    float scale(std::size_t r) const { return scales_[r]; }
    const std::vector<float> &scales() const { return scales_; }

    /** Integer code at (r, c), sign-extended (int4 is unpacked). */
    int code(std::size_t r, std::size_t c) const;

    /** Dequantized value at (r, c): scale(r) * code(r, c). */
    float dequant(std::size_t r, std::size_t c) const
    {
        return scales_[r] * static_cast<float>(code(r, c));
    }

    /** Full dequantized copy (testing / fake-quant). */
    Matrix dequantize() const;

    /**
     * Packed payload: rows*cols int8 codes, or rows*ceil(cols/2) bytes
     * for int4 (low nibble = even column; a trailing odd column leaves
     * the high nibble zero so serialization is canonical).
     */
    const std::vector<std::int8_t> &payload() const { return data_; }
    /** Payload bytes per row (cols for int8, ceil(cols/2) for int4). */
    std::size_t packedRowBytes() const;

    /**
     * Rebuild from serialized parts (quant/serialize.cc). The caller is
     * responsible for validating sizes/values; this only adopts them.
     */
    static QuantizedMatrix fromParts(std::size_t rows, std::size_t cols,
                                     quant::QuantMode mode,
                                     std::vector<float> scales,
                                     std::vector<std::int8_t> payload);

    bool operator==(const QuantizedMatrix &) const = default;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    quant::QuantMode mode_ = quant::QuantMode::Int8;
    std::vector<float> scales_;      ///< one per row
    std::vector<std::int8_t> data_;  ///< packed codes, row-major
};

/** y = A_q * x with in-register dequantization. */
void gemvQuant(const QuantizedMatrix &a, const Vector &x, Vector &y);

/** y = A_q * x + b. */
void gemvQuant(const QuantizedMatrix &a, const Vector &x, const Vector &b,
               Vector &y);

/**
 * Row-skipping quantized GEMV: same contract as tensor::gemvRowSkip —
 * skipped rows are neither dequantized nor computed and output 0.
 */
void gemvQuantRowSkip(const QuantizedMatrix &a, const Vector &x,
                      const std::vector<std::uint32_t> &skip, Vector &y);

/** C = A_q * B. A is m x k quantized, B is k x n, C is m x n. */
void gemmQuant(const QuantizedMatrix &a, const Matrix &b, Matrix &c);

} // namespace tensor
} // namespace mflstm

#endif // MFLSTM_TENSOR_QMATRIX_HH
