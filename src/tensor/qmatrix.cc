#include "tensor/qmatrix.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mflstm {
namespace tensor {

namespace {

/** Quantize one fp32 value against a row scale. */
inline int
encode(float w, float inv_scale, int qmax)
{
    const int q =
        static_cast<int>(std::lround(static_cast<double>(w) * inv_scale));
    return std::clamp(q, -qmax, qmax);
}

/** Sign-extend the low nibble of a packed int4 byte. */
inline int
lowNibble(std::int8_t byte)
{
    const int v = byte & 0x0f;
    return v >= 8 ? v - 16 : v;
}

inline int
highNibble(std::int8_t byte)
{
    const int v = (byte >> 4) & 0x0f;
    return v >= 8 ? v - 16 : v;
}

} // namespace

std::size_t
QuantizedMatrix::packedRowBytes() const
{
    return mode_ == quant::QuantMode::Int4 ? (cols_ + 1) / 2 : cols_;
}

QuantizedMatrix
QuantizedMatrix::quantize(const Matrix &m, quant::QuantMode mode)
{
    assert(mode != quant::QuantMode::Fp32 &&
           "quantize() needs an integer mode");
    QuantizedMatrix out;
    out.rows_ = m.rows();
    out.cols_ = m.cols();
    out.mode_ = mode;
    out.scales_.resize(m.rows());
    out.data_.assign(m.rows() * out.packedRowBytes(), 0);

    const int qm = quant::qmax(mode);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        float absmax = 0.0f;
        for (const float w : m.row(r))
            absmax = std::max(absmax, std::fabs(w));
        // A zero row keeps scale 1: every code is 0, the dequantized
        // row is exactly zero, and the scale stays finite and non-zero
        // (the fsck invariant).
        const float s =
            absmax > 0.0f ? absmax / static_cast<float>(qm) : 1.0f;
        out.scales_[r] = s;
        const float inv = 1.0f / s;
        std::int8_t *row = out.data_.data() + r * out.packedRowBytes();
        if (mode == quant::QuantMode::Int8) {
            for (std::size_t c = 0; c < m.cols(); ++c)
                row[c] = static_cast<std::int8_t>(
                    encode(m.at(r, c), inv, qm));
        } else {
            for (std::size_t c = 0; c < m.cols(); ++c) {
                const int q = encode(m.at(r, c), inv, qm) & 0x0f;
                if ((c & 1) == 0)
                    row[c / 2] = static_cast<std::int8_t>(q);
                else
                    row[c / 2] = static_cast<std::int8_t>(
                        (row[c / 2] & 0x0f) | (q << 4));
            }
        }
    }
    return out;
}

int
QuantizedMatrix::code(std::size_t r, std::size_t c) const
{
    assert(r < rows_ && c < cols_);
    const std::int8_t *row = data_.data() + r * packedRowBytes();
    if (mode_ == quant::QuantMode::Int8)
        return row[c];
    return (c & 1) == 0 ? lowNibble(row[c / 2]) : highNibble(row[c / 2]);
}

Matrix
QuantizedMatrix::dequantize() const
{
    Matrix out(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out.at(r, c) = dequant(r, c);
    return out;
}

QuantizedMatrix
QuantizedMatrix::fromParts(std::size_t rows, std::size_t cols,
                           quant::QuantMode mode, std::vector<float> scales,
                           std::vector<std::int8_t> payload)
{
    QuantizedMatrix out;
    out.rows_ = rows;
    out.cols_ = cols;
    out.mode_ = mode;
    out.scales_ = std::move(scales);
    out.data_ = std::move(payload);
    assert(out.scales_.size() == rows);
    assert(out.data_.size() == rows * out.packedRowBytes());
    return out;
}

void
gemvQuant(const QuantizedMatrix &a, const Vector &x, Vector &y)
{
    assert(x.size() == a.cols());
    y.resize(a.rows());
    const std::size_t stride = a.packedRowBytes();
    const bool int8 = a.mode() == quant::QuantMode::Int8;
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const std::int8_t *row = a.payload().data() + r * stride;
        float acc = 0.0f;
        if (int8) {
            for (std::size_t c = 0; c < a.cols(); ++c)
                acc += static_cast<float>(row[c]) * x[c];
        } else {
            for (std::size_t c = 0; c < a.cols(); ++c)
                acc += static_cast<float>(a.code(r, c)) * x[c];
        }
        // Per-row scale hoisted out of the inner loop: equivalent to
        // dequantizing each element before its FMA.
        y[r] = a.scale(r) * acc;
    }
}

void
gemvQuant(const QuantizedMatrix &a, const Vector &x, const Vector &b,
          Vector &y)
{
    gemvQuant(a, x, y);
    assert(b.size() == y.size());
    for (std::size_t r = 0; r < y.size(); ++r)
        y[r] += b[r];
}

void
gemvQuantRowSkip(const QuantizedMatrix &a, const Vector &x,
                 const std::vector<std::uint32_t> &skip, Vector &y)
{
    assert(x.size() == a.cols());
    y.resize(a.rows());
    std::vector<bool> skipped(a.rows(), false);
    for (const std::uint32_t r : skip)
        if (r < a.rows())
            skipped[r] = true;
    const std::size_t stride = a.packedRowBytes();
    const bool int8 = a.mode() == quant::QuantMode::Int8;
    for (std::size_t r = 0; r < a.rows(); ++r) {
        if (skipped[r]) {
            y[r] = 0.0f;
            continue;
        }
        const std::int8_t *row = a.payload().data() + r * stride;
        float acc = 0.0f;
        if (int8) {
            for (std::size_t c = 0; c < a.cols(); ++c)
                acc += static_cast<float>(row[c]) * x[c];
        } else {
            for (std::size_t c = 0; c < a.cols(); ++c)
                acc += static_cast<float>(a.code(r, c)) * x[c];
        }
        y[r] = a.scale(r) * acc;
    }
}

void
gemmQuant(const QuantizedMatrix &a, const Matrix &b, Matrix &c)
{
    assert(a.cols() == b.rows());
    c = Matrix(a.rows(), b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const float s = a.scale(r);
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const float w = s * static_cast<float>(a.code(r, k));
            for (std::size_t j = 0; j < b.cols(); ++j)
                c.at(r, j) += w * b.at(k, j);
        }
    }
}

} // namespace tensor
} // namespace mflstm
