/**
 * @file
 * Streaming statistics. The context-link predictor (Section IV-B,
 * "Accuracy Recovery") collects the value distribution of every element of
 * h_t over an offline run and predicts lost links with the per-element
 * expectation (Eq. 6); Histogram and VectorDistribution implement exactly
 * that. RunningStat is the general mean/variance accumulator used by the
 * instrumentation across the repo.
 */

#ifndef MFLSTM_TENSOR_STATS_HH
#define MFLSTM_TENSOR_STATS_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hh"

namespace mflstm {
namespace tensor {

/** Welford-style streaming mean / variance / extrema accumulator. */
class RunningStat
{
  public:
    void add(double x);

    std::size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-range histogram over [lo, hi] with uniform bins; out-of-range
 * samples clamp to the edge bins so the probability mass always sums to 1.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t samples() const { return samples_; }
    std::size_t bins() const { return counts_.size(); }
    double binCenter(std::size_t i) const;

    /** Empirical probability of bin i (rho_ij in Eq. 6). */
    double probability(std::size_t i) const;

    /**
     * Expectation under the empirical distribution:
     * sum_i binCenter(i) * probability(i) — Eq. 6 for one element.
     */
    double expectation() const;

    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /** Raw count of bin i (persistence export). */
    std::uint64_t binCount(std::size_t i) const;

    /**
     * Replace the bin counts wholesale (persistence restore); the sample
     * count becomes the sum. @throws std::invalid_argument when
     * counts.size() != bins().
     */
    void restoreCounts(std::span<const std::uint64_t> counts);

  private:
    double lo_;
    double hi_;
    double width_;
    std::size_t samples_ = 0;
    std::vector<std::size_t> counts_;
};

/**
 * Distribution of each element of a fixed-size vector observed many
 * times. observe() ingests one context-link vector; expectation() returns
 * the predicted context link of Eq. 6.
 */
class VectorDistribution
{
  public:
    /**
     * @param dim   vector dimensionality (the hidden size).
     * @param lo/hi histogram range; context links h_t live in [-1, 1].
     * @param bins  histogram resolution per element.
     */
    VectorDistribution(std::size_t dim, double lo, double hi,
                       std::size_t bins);

    void observe(const Vector &v);

    std::size_t dim() const { return elements_.size(); }
    std::size_t samples() const { return samples_; }

    const Histogram &element(std::size_t i) const { return elements_[i]; }

    /** Per-element expectation vector (the predicted link). */
    Vector expectation() const;

    /**
     * Restore element @p i's histogram counts (persistence restore) and
     * re-sync the observation count from element 0.
     */
    void restoreElementCounts(std::size_t i,
                              std::span<const std::uint64_t> counts);

  private:
    std::size_t samples_ = 0;
    std::vector<Histogram> elements_;
};

} // namespace tensor
} // namespace mflstm

#endif // MFLSTM_TENSOR_STATS_HH
