#include "tensor/ops.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace mflstm {
namespace tensor {

void
gemv(const Matrix &a, const Vector &x, Vector &y)
{
    assert(x.size() == a.cols());
    y.resize(a.rows());

    const std::size_t cols = a.cols();
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const float *row = a.data() + r * cols;
        float acc = 0.0f;
        for (std::size_t c = 0; c < cols; ++c)
            acc += row[c] * x[c];
        y[r] = acc;
    }
}

void
gemv(const Matrix &a, const Vector &x, const Vector &b, Vector &y)
{
    assert(b.size() == a.rows());
    gemv(a, x, y);
    for (std::size_t r = 0; r < y.size(); ++r)
        y[r] += b[r];
}

void
gemvRowSkip(const Matrix &a, const Vector &x,
            const std::vector<std::uint32_t> &skip, Vector &y)
{
    assert(x.size() == a.cols());
    y.resize(a.rows());

    // Build a membership mask; the skip lists DRS produces are short
    // relative to the row count, but mask lookup keeps the inner loop
    // branch-free with respect to list order.
    std::vector<std::uint8_t> skipped(a.rows(), 0);
    for (std::uint32_t r : skip) {
        assert(r < a.rows());
        skipped[r] = 1;
    }

    const std::size_t cols = a.cols();
    for (std::size_t r = 0; r < a.rows(); ++r) {
        if (skipped[r]) {
            y[r] = 0.0f;
            continue;
        }
        const float *row = a.data() + r * cols;
        float acc = 0.0f;
        for (std::size_t c = 0; c < cols; ++c)
            acc += row[c] * x[c];
        y[r] = acc;
    }
}

void
gemvT(const Matrix &a, const Vector &x, Vector &y)
{
    assert(x.size() == a.rows());
    y.resize(a.cols());
    y.zero();

    const std::size_t cols = a.cols();
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const float xv = x[r];
        if (xv == 0.0f)
            continue;
        const float *row = a.data() + r * cols;
        for (std::size_t c = 0; c < cols; ++c)
            y[c] += xv * row[c];
    }
}

void
ger(float alpha, const Vector &x, const Vector &y, Matrix &a)
{
    assert(x.size() == a.rows() && y.size() == a.cols());
    const std::size_t cols = a.cols();
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const float xv = alpha * x[r];
        if (xv == 0.0f)
            continue;
        float *row = a.data() + r * cols;
        for (std::size_t c = 0; c < cols; ++c)
            row[c] += xv * y[c];
    }
}

namespace {

// Cache-blocking tile edge for GEMM. 64x64 fp32 tiles (16 KiB) keep three
// operands resident in a typical 128-256 KiB L2 slice.
constexpr std::size_t gemmTile = 64;

} // anonymous namespace

void
gemm(const Matrix &a, const Matrix &b, Matrix &c)
{
    assert(a.cols() == b.rows());
    c = Matrix(a.rows(), b.cols());

    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();

    for (std::size_t i0 = 0; i0 < m; i0 += gemmTile) {
        const std::size_t i1 = std::min(i0 + gemmTile, m);
        for (std::size_t k0 = 0; k0 < k; k0 += gemmTile) {
            const std::size_t k1 = std::min(k0 + gemmTile, k);
            for (std::size_t i = i0; i < i1; ++i) {
                const float *arow = a.data() + i * k;
                float *crow = c.data() + i * n;
                for (std::size_t kk = k0; kk < k1; ++kk) {
                    const float av = arow[kk];
                    const float *brow = b.data() + kk * n;
                    for (std::size_t j = 0; j < n; ++j)
                        crow[j] += av * brow[j];
                }
            }
        }
    }
}

void
gemmBias(const Matrix &a, const Matrix &b, const Vector &bias, Matrix &c)
{
    assert(bias.size() == a.rows());
    gemm(a, b, c);
    for (std::size_t r = 0; r < c.rows(); ++r) {
        float *crow = c.data() + r * c.cols();
        for (std::size_t j = 0; j < c.cols(); ++j)
            crow[j] += bias[r];
    }
}

void
add(std::span<const float> a, std::span<const float> b, std::span<float> out)
{
    assert(a.size() == b.size() && a.size() == out.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + b[i];
}

void
hadamard(std::span<const float> a, std::span<const float> b,
         std::span<float> out)
{
    assert(a.size() == b.size() && a.size() == out.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] * b[i];
}

void
axpy(float alpha, std::span<const float> x, std::span<float> y)
{
    assert(x.size() == y.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] += alpha * x[i];
}

float
sumAbs(std::span<const float> a)
{
    float acc = 0.0f;
    for (float v : a)
        acc += std::fabs(v);
    return acc;
}

Vector
rowAbsSums(const Matrix &a)
{
    Vector d(a.rows());
    for (std::size_t r = 0; r < a.rows(); ++r)
        d[r] = sumAbs(a.row(r));
    return d;
}

float
dot(std::span<const float> a, std::span<const float> b)
{
    assert(a.size() == b.size());
    float acc = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

std::size_t
argmax(std::span<const float> a)
{
    assert(!a.empty());
    return static_cast<std::size_t>(
        std::max_element(a.begin(), a.end()) - a.begin());
}

float
norm2(std::span<const float> a)
{
    return std::sqrt(dot(a, a));
}

float
meanAbsDiff(std::span<const float> a, std::span<const float> b)
{
    assert(a.size() == b.size());
    if (a.empty())
        return 0.0f;
    float acc = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += std::fabs(a[i] - b[i]);
    return acc / static_cast<float>(a.size());
}

} // namespace tensor
} // namespace mflstm
