/**
 * @file
 * Dense row-major matrix and vector containers used throughout the
 * reproduction. These are deliberately simple, cache-friendly value types:
 * the LSTM substrate (src/nn) and the functional approximation passes
 * (src/core) operate directly on them.
 */

#ifndef MFLSTM_TENSOR_MATRIX_HH
#define MFLSTM_TENSOR_MATRIX_HH

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace mflstm {
namespace tensor {

/** A dynamically sized dense vector of single-precision floats. */
class Vector
{
  public:
    Vector() = default;

    /** Construct a zero-initialised vector of the given size. */
    explicit Vector(std::size_t size) : data_(size, 0.0f) {}

    /** Construct a vector filled with a constant value. */
    Vector(std::size_t size, float fill) : data_(size, fill) {}

    /** Construct from an explicit initialiser list (mainly for tests). */
    Vector(std::initializer_list<float> init) : data_(init) {}

    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &operator[](std::size_t i) { assert(i < size()); return data_[i]; }
    float operator[](std::size_t i) const
    {
        assert(i < size());
        return data_[i];
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    std::span<float> span() { return {data_.data(), data_.size()}; }
    std::span<const float> span() const
    {
        return {data_.data(), data_.size()};
    }

    auto begin() { return data_.begin(); }
    auto end() { return data_.end(); }
    auto begin() const { return data_.begin(); }
    auto end() const { return data_.end(); }

    /** Reset every element to zero without reallocating. */
    void zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

    /** Resize, zero-filling any new elements. */
    void resize(std::size_t size) { data_.resize(size, 0.0f); }

    bool operator==(const Vector &other) const = default;

  private:
    std::vector<float> data_;
};

/**
 * A dense row-major matrix of single-precision floats.
 *
 * Rows are the unit of interest for the paper's Dynamic Row Skip: the
 * class exposes row spans so DRS can address and skip individual rows.
 */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct a zero-initialised rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {}

    /** Construct filled with a constant value. */
    Matrix(std::size_t rows, std::size_t cols, float fill)
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &at(std::size_t r, std::size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }
    float at(std::size_t r, std::size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    float &operator()(std::size_t r, std::size_t c) { return at(r, c); }
    float operator()(std::size_t r, std::size_t c) const { return at(r, c); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Mutable view of one row. */
    std::span<float> row(std::size_t r)
    {
        assert(r < rows_);
        return {data_.data() + r * cols_, cols_};
    }

    /** Read-only view of one row. */
    std::span<const float> row(std::size_t r) const
    {
        assert(r < rows_);
        return {data_.data() + r * cols_, cols_};
    }

    /** Reset every element to zero without reallocating. */
    void zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

    /** Size of the backing store in bytes (what a DMA would move). */
    std::size_t bytes() const { return data_.size() * sizeof(float); }

    bool operator==(const Matrix &other) const = default;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/**
 * Vertically concatenate matrices that share a column count. Used to build
 * the united weight matrices U_{f,i,c,o} and W_{f,i,c,o} of Section II-C.
 */
Matrix vconcat(const std::vector<const Matrix *> &parts);

/** Extract a horizontal band [row_begin, row_end) of a matrix. */
Matrix rowSlice(const Matrix &m, std::size_t row_begin, std::size_t row_end);

} // namespace tensor
} // namespace mflstm

#endif // MFLSTM_TENSOR_MATRIX_HH
