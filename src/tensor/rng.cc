#include "tensor/rng.hh"

#include <cmath>

namespace mflstm {
namespace tensor {

float
Rng::uniform(float lo, float hi)
{
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
}

float
Rng::normal(float mean, float stddev)
{
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
}

std::int64_t
Rng::integer(std::int64_t lo, std::int64_t hi)
{
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

bool
Rng::chance(double p)
{
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

void
Rng::fillNormal(Vector &v, float mean, float stddev)
{
    std::normal_distribution<float> dist(mean, stddev);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = dist(engine_);
}

void
Rng::fillNormal(Matrix &m, float mean, float stddev)
{
    std::normal_distribution<float> dist(mean, stddev);
    for (std::size_t i = 0; i < m.size(); ++i)
        m.data()[i] = dist(engine_);
}

void
Rng::fillUniform(Matrix &m, float lo, float hi)
{
    std::uniform_real_distribution<float> dist(lo, hi);
    for (std::size_t i = 0; i < m.size(); ++i)
        m.data()[i] = dist(engine_);
}

void
Rng::fillXavier(Matrix &m, std::size_t fan_in, std::size_t fan_out)
{
    const float bound =
        std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    fillUniform(m, -bound, bound);
}

Rng
Rng::fork()
{
    return Rng(engine_());
}

} // namespace tensor
} // namespace mflstm
