#include "nn/lstm.hh"

#include <cassert>

#include "tensor/activations.hh"
#include "tensor/ops.hh"

namespace mflstm {
namespace nn {

using tensor::hardSigmoid;
using tensor::sigmoid;

LstmLayerParams::LstmLayerParams(std::size_t input_size,
                                 std::size_t hidden_size)
    : wf(hidden_size, input_size), wi(hidden_size, input_size),
      wc(hidden_size, input_size), wo(hidden_size, input_size),
      uf(hidden_size, hidden_size), ui(hidden_size, hidden_size),
      uc(hidden_size, hidden_size), uo(hidden_size, hidden_size),
      bf(hidden_size), bi(hidden_size), bc(hidden_size), bo(hidden_size)
{}

void
LstmLayerParams::init(tensor::Rng &rng)
{
    const std::size_t in = inputSize();
    const std::size_t hid = hiddenSize();

    for (Matrix *w : {&wf, &wi, &wc, &wo})
        rng.fillXavier(*w, in, hid);
    for (Matrix *u : {&uf, &ui, &uc, &uo})
        rng.fillXavier(*u, hid, hid);

    // The standard forget-gate bias of 1 keeps early-training gradients
    // flowing; it also biases f_t toward the insensitive area, which is
    // exactly the structure the inter-cell analysis exploits.
    for (std::size_t j = 0; j < hid; ++j)
        bf[j] = 1.0f;
}

Matrix
LstmLayerParams::unitedU() const
{
    return tensor::vconcat({&uf, &ui, &uc, &uo});
}

Matrix
LstmLayerParams::unitedW() const
{
    return tensor::vconcat({&wf, &wi, &wc, &wo});
}

Vector
LstmLayerParams::unitedBias() const
{
    const std::size_t hid = hiddenSize();
    Vector out(4 * hid);
    const Vector *parts[] = {&bf, &bi, &bc, &bo};
    for (std::size_t p = 0; p < 4; ++p)
        for (std::size_t j = 0; j < hid; ++j)
            out[p * hid + j] = (*parts[p])[j];
    return out;
}

std::vector<Vector>
projectInputs(const LstmLayerParams &p, const std::vector<Vector> &xs)
{
    const Matrix w = p.unitedW();
    std::vector<Vector> out;
    out.reserve(xs.size());
    for (const Vector &x : xs) {
        Vector proj;
        tensor::gemv(w, x, proj);
        out.push_back(std::move(proj));
    }
    return out;
}

LstmState
lstmCellForward(const LstmLayerParams &p, const Vector &x_proj,
                const LstmState &prev, SigmoidKind sk, LstmCellTrace *trace)
{
    const std::size_t hid = p.hiddenSize();
    assert(x_proj.size() == 4 * hid);
    assert(prev.h.size() == hid && prev.c.size() == hid);

    // Recurrent projections U_* h_{t-1}: the per-cell Sgemv of
    // Algorithm 1 line 4 (here evaluated per gate for clarity).
    Vector rf, ri, rc, ro;
    tensor::gemv(p.uf, prev.h, rf);
    tensor::gemv(p.ui, prev.h, ri);
    tensor::gemv(p.uc, prev.h, rc);
    tensor::gemv(p.uo, prev.h, ro);

    auto sig = [sk](float v) {
        return sk == SigmoidKind::Logistic ? sigmoid(v) : hardSigmoid(v);
    };

    LstmState next(hid);
    Vector f(hid), i(hid), g(hid), o(hid);
    for (std::size_t j = 0; j < hid; ++j) {
        f[j] = sig(x_proj[j] + rf[j] + p.bf[j]);
        i[j] = sig(x_proj[hid + j] + ri[j] + p.bi[j]);
        g[j] = std::tanh(x_proj[2 * hid + j] + rc[j] + p.bc[j]);
        o[j] = sig(x_proj[3 * hid + j] + ro[j] + p.bo[j]);
        next.c[j] = f[j] * prev.c[j] + i[j] * g[j];
        next.h[j] = o[j] * std::tanh(next.c[j]);
    }

    if (trace) {
        trace->f = std::move(f);
        trace->i = std::move(i);
        trace->g = std::move(g);
        trace->o = std::move(o);
        trace->c = next.c;
        trace->h = next.h;
        trace->c_prev = prev.c;
        trace->h_prev = prev.h;
    }
    return next;
}

std::vector<Vector>
lstmLayerForward(const LstmLayerParams &p, const std::vector<Vector> &xs,
                 SigmoidKind sk, std::vector<LstmCellTrace> *traces)
{
    const std::vector<Vector> projs = projectInputs(p, xs);

    LstmState state(p.hiddenSize());
    std::vector<Vector> outputs;
    outputs.reserve(xs.size());
    if (traces) {
        traces->clear();
        traces->resize(xs.size());
    }

    for (std::size_t t = 0; t < projs.size(); ++t) {
        state = lstmCellForward(p, projs[t], state, sk,
                                traces ? &(*traces)[t] : nullptr);
        outputs.push_back(state.h);
    }
    return outputs;
}

} // namespace nn
} // namespace mflstm
