/**
 * @file
 * Backpropagation-through-time training for LstmModel. The paper trains
 * its six NLP applications offline (in PyTorch) and only then applies the
 * inference-time approximations; this trainer fills the same role so the
 * accuracy experiments in bench/ act on genuinely trained gate statistics
 * rather than random weights.
 *
 * Hand-derived gradients for Eq. 1-5 (no autograd): per cell, with
 * s = sigma and the cached gate activations f, i, g=tanh(.), o,
 *
 *   dL/do   = dL/dh * tanh(c)
 *   dL/dc  += dL/dh * o * (1 - tanh^2(c))
 *   dL/df   = dL/dc * c_prev        dL/di = dL/dc * g
 *   dL/dg   = dL/dc * i             dL/dc_prev = dL/dc * f
 *
 * then through the gate nonlinearities into the pre-activations, and via
 * U^T / W^T into h_{t-1} and x_t.
 */

#ifndef MFLSTM_NN_TRAIN_HH
#define MFLSTM_NN_TRAIN_HH

#include <cstdint>
#include <vector>

#include "nn/model.hh"

namespace mflstm {
namespace nn {

/** Gradient buffers shaped like one LstmLayerParams. */
struct LstmLayerGrads
{
    LstmLayerGrads() = default;
    LstmLayerGrads(std::size_t input_size, std::size_t hidden_size);

    void zero();

    Matrix wf, wi, wc, wo;
    Matrix uf, ui, uc, uo;
    Vector bf, bi, bc, bo;
};

/** Gradient buffers for a whole model. */
struct ModelGrads
{
    explicit ModelGrads(const LstmModel &model);

    void zero();

    Matrix embedding;
    std::vector<LstmLayerGrads> layers;
    Matrix headW;
    Vector headB;
};

/** Hyper-parameters for Trainer. */
struct TrainConfig
{
    double lr = 1e-3;        ///< Adam step size
    double beta1 = 0.9;      ///< Adam first-moment decay
    double beta2 = 0.999;    ///< Adam second-moment decay
    double epsilon = 1e-8;   ///< Adam denominator fuzz
    double clipNorm = 5.0;   ///< global-norm gradient clip; <=0 disables
    /**
     * Decoupled (AdamW-style) weight decay, applied to the *recurrent*
     * matrices U_* only. Besides regularising, decay keeps the recurrent
     * weight rows small — the property the paper's relevance analysis
     * (Section IV-A) exploits, since the reach of h_{t-1} into a gate is
     * bounded by the row's L1 norm. Input/embedding/head weights are
     * left alone so the decay cannot starve the task signal.
     */
    double recurrentDecay = 3e-2;
    std::uint64_t shuffleSeed = 1;  ///< epoch shuffling seed
};

/**
 * Single-sample (stochastic) BPTT trainer with Adam. Deliberately simple:
 * the accuracy models in this reproduction are small (Section 5 of
 * DESIGN.md), so per-sample updates train them in seconds.
 */
class Trainer
{
  public:
    Trainer(LstmModel &model, const TrainConfig &cfg);

    /**
     * One optimisation step on a classification sample.
     * @return the sample's cross-entropy loss before the update.
     */
    double stepClassification(const Sample &sample);

    /**
     * One optimisation step on an LM sequence (predict token t+1 at t).
     * @return mean per-step cross-entropy before the update.
     */
    double stepLanguageModel(const std::vector<std::int32_t> &seq);

    /** Shuffled multi-epoch loop over a classification set. */
    double trainClassification(const std::vector<Sample> &data,
                               std::size_t epochs);

    /** Shuffled multi-epoch loop over an LM corpus. */
    double
    trainLanguageModel(const std::vector<std::vector<std::int32_t>> &seqs,
                       std::size_t epochs);

    std::size_t stepsTaken() const { return step_; }

    /**
     * Fill grads() for one sample without touching the parameters.
     * Exposed so tests can finite-difference-check the BPTT math.
     * @return the loss at the current parameters.
     */
    double computeGradients(const std::vector<std::int32_t> &tokens,
                            std::int32_t label, bool language_model);

    const ModelGrads &grads() const { return grads_; }

  private:

    void applyAdam();
    double gradNorm() const;
    void scaleGrads(double factor);

    /** Flat (param, grad, moment) registry built once at construction. */
    void registerAll();
    void registerPair(float *param, float *grad, std::size_t n,
                      bool decay = false);

    LstmModel &model_;
    TrainConfig cfg_;
    ModelGrads grads_;

    struct Slot
    {
        float *param;
        float *grad;
        std::size_t size;
        std::size_t momentOffset;
        bool decay;
    };
    std::vector<Slot> slots_;
    std::vector<double> m_;
    std::vector<double> v_;
    std::size_t step_ = 0;
};

} // namespace nn
} // namespace mflstm

#endif // MFLSTM_NN_TRAIN_HH
