#include "nn/serialize.hh"

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "obs/observer.hh"

namespace mflstm {
namespace nn {

namespace {

using io::ArtifactError;
using io::ErrorKind;

/// legacy v1: raw little-endian dump, magic + version + 7 header words
constexpr std::uint32_t kLegacyMagic = 0x4d464c31;  // "MFL1"
constexpr std::uint32_t kLegacyVersion = 1;
constexpr std::size_t kLegacyHeaderBytes = 9 * 4;

/// v2: artifact container chunks
constexpr std::uint32_t kModelSchemaVersion = 2;
constexpr std::uint32_t kChunkConfig = io::fourcc('M', 'C', 'F', 'G');
constexpr std::uint32_t kChunkEmbedding = io::fourcc('M', 'E', 'M', 'B');
constexpr std::uint32_t kChunkHead = io::fourcc('M', 'H', 'E', 'D');

std::uint32_t
layerTag(std::size_t l)
{
    return io::indexedTag('L', 'Y', l);
}

/**
 * The per-allocation contract: every dimension is bounded and the
 * total parameter count fits the limits under checked arithmetic
 * BEFORE LstmModel's constructor allocates anything.
 */
void
validateConfig(const ModelConfig &cfg, const io::ArtifactLimits &limits,
               const std::string &path)
{
    const auto dim = [&](std::uint64_t v, const char *name,
                         std::uint64_t min) {
        if (v < min || v > limits.maxDim)
            throw ArtifactError(
                ErrorKind::LimitExceeded,
                "loadModel: " + path + ": " + name + " = " +
                    std::to_string(v) + " outside [" +
                    std::to_string(min) + ", " +
                    std::to_string(limits.maxDim) + "]");
    };
    dim(cfg.vocab, "vocab", 1);
    dim(cfg.embedSize, "embedSize", 1);
    dim(cfg.hiddenSize, "hiddenSize", 1);
    dim(cfg.numLayers, "numLayers", 1);
    dim(cfg.numClasses, "numClasses", 0);
    if (cfg.headClasses() == 0)
        throw ArtifactError(ErrorKind::Malformed,
                            "loadModel: " + path +
                                ": classification model with zero "
                                "classes");

    std::uint64_t total = io::checkedMul(cfg.vocab, cfg.embedSize,
                                         "embedding");
    for (std::size_t l = 0; l < cfg.numLayers; ++l) {
        const std::uint64_t input =
            l == 0 ? cfg.embedSize : cfg.hiddenSize;
        std::uint64_t layer = io::checkedMul(
            4, io::checkedMul(cfg.hiddenSize, input, "W"), "W");
        layer = io::checkedAdd(
            layer,
            io::checkedMul(
                4, io::checkedMul(cfg.hiddenSize, cfg.hiddenSize, "U"),
                "U"),
            "layer");
        layer = io::checkedAdd(
            layer, io::checkedMul(4, cfg.hiddenSize, "b"), "layer");
        total = io::checkedAdd(total, layer, "parameters");
    }
    total = io::checkedAdd(
        total,
        io::checkedMul(cfg.headClasses(), cfg.hiddenSize, "head"),
        "parameters");
    total = io::checkedAdd(total, cfg.headClasses(), "parameters");

    if (total > limits.maxElements)
        throw ArtifactError(
            ErrorKind::LimitExceeded,
            "loadModel: " + path + ": header requests " +
                std::to_string(total) + " parameters, over the " +
                std::to_string(limits.maxElements) + " element limit");
}

void
requireFinite(const float *data, std::size_t n, const char *what,
              const std::string &path)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (!std::isfinite(data[i]))
            throw ArtifactError(
                ErrorKind::NonFinite,
                "loadModel: " + path + ": non-finite value in " +
                    what + " at element " + std::to_string(i));
    }
}

/** Copy a length-prefixed f32 array into @p dst (exact size match). */
void
readTensor(io::ByteReader &r, float *dst, std::size_t expected,
           const char *what, const std::string &path)
{
    const std::vector<float> v = r.f32Array();
    if (v.size() != expected)
        throw ArtifactError(
            ErrorKind::Malformed,
            "loadModel: " + path + ": " + what + " holds " +
                std::to_string(v.size()) + " values, expected " +
                std::to_string(expected));
    std::copy(v.begin(), v.end(), dst);
    requireFinite(dst, expected, what, path);
}

LstmModel
loadModelV2(const std::string &path, const io::ArtifactLimits &limits)
{
    const io::ArtifactReader reader(path, io::kSchemaModel, limits);
    if (reader.schemaVersion() != kModelSchemaVersion)
        throw ArtifactError(ErrorKind::BadVersion,
                            "loadModel: " + path +
                                ": unsupported model schema version " +
                                std::to_string(reader.schemaVersion()));

    ModelConfig cfg;
    {
        io::ByteReader r = reader.chunk(kChunkConfig);
        const std::uint32_t task = r.u32();
        cfg.vocab = static_cast<std::size_t>(r.u64());
        cfg.embedSize = static_cast<std::size_t>(r.u64());
        cfg.hiddenSize = static_cast<std::size_t>(r.u64());
        cfg.numLayers = static_cast<std::size_t>(r.u64());
        cfg.numClasses = static_cast<std::size_t>(r.u64());
        const std::uint32_t sigmoid = r.u32();
        r.expectEnd();
        if (task > 1 || sigmoid > 1)
            throw ArtifactError(ErrorKind::Malformed,
                                "loadModel: " + path +
                                    ": bad task/sigmoid enum value");
        cfg.task = task ? TaskKind::LanguageModel
                        : TaskKind::Classification;
        cfg.sigmoid = sigmoid ? SigmoidKind::Hard
                              : SigmoidKind::Logistic;
    }
    validateConfig(cfg, limits, path);

    LstmModel model(cfg, 0);
    {
        io::ByteReader r = reader.chunk(kChunkEmbedding);
        readTensor(r, model.embedding().table.data(),
                   model.embedding().table.size(), "embedding", path);
        r.expectEnd();
    }
    for (std::size_t l = 0; l < cfg.numLayers; ++l) {
        io::ByteReader r = reader.chunk(layerTag(l));
        LstmLayerParams &p = model.layers()[l];
        for (tensor::Matrix *m :
             {&p.wf, &p.wi, &p.wc, &p.wo, &p.uf, &p.ui, &p.uc, &p.uo})
            readTensor(r, m->data(), m->size(), "layer matrix", path);
        for (tensor::Vector *v : {&p.bf, &p.bi, &p.bc, &p.bo})
            readTensor(r, v->data(), v->size(), "layer bias", path);
        r.expectEnd();
    }
    {
        io::ByteReader r = reader.chunk(kChunkHead);
        readTensor(r, model.head().w.data(), model.head().w.size(),
                   "head weights", path);
        readTensor(r, model.head().b.data(), model.head().b.size(),
                   "head bias", path);
        r.expectEnd();
    }
    return model;
}

/**
 * Legacy v1 migration path: same byte layout as the original raw dump,
 * re-parsed with the full validation contract — dimensions checked
 * before allocation, the exact expected file size compared against the
 * bytes present, and a non-finite scan (v1 carries no checksum, so a
 * bit-flipped weight is only catchable when it decodes to NaN/Inf).
 */
LstmModel
loadModelLegacy(const std::string &path,
                const io::ArtifactLimits &limits)
{
    std::error_code ec;
    const std::uintmax_t file_size =
        std::filesystem::file_size(path, ec);
    if (ec)
        throw ArtifactError(ErrorKind::Io, "loadModel: cannot stat " +
                                               path + ": " +
                                               ec.message());

    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw ArtifactError(ErrorKind::Io,
                            "loadModel: cannot open " + path);

    const auto u32 = [&]() -> std::uint32_t {
        std::uint8_t b[4];
        is.read(reinterpret_cast<char *>(b), sizeof(b));
        if (!is)
            throw ArtifactError(ErrorKind::Truncated,
                                "loadModel: truncated header in " +
                                    path);
        return static_cast<std::uint32_t>(b[0]) |
               static_cast<std::uint32_t>(b[1]) << 8 |
               static_cast<std::uint32_t>(b[2]) << 16 |
               static_cast<std::uint32_t>(b[3]) << 24;
    };

    if (u32() != kLegacyMagic)
        throw ArtifactError(ErrorKind::BadMagic,
                            "loadModel: bad magic in " + path);
    if (u32() != kLegacyVersion)
        throw ArtifactError(ErrorKind::BadVersion,
                            "loadModel: unsupported legacy version in " +
                                path);

    ModelConfig cfg;
    const std::uint32_t task = u32();
    cfg.vocab = u32();
    cfg.embedSize = u32();
    cfg.hiddenSize = u32();
    cfg.numLayers = u32();
    cfg.numClasses = u32();
    const std::uint32_t sigmoid = u32();
    if (task > 1 || sigmoid > 1)
        throw ArtifactError(ErrorKind::Malformed,
                            "loadModel: " + path +
                                ": bad task/sigmoid enum value");
    cfg.task = task ? TaskKind::LanguageModel : TaskKind::Classification;
    cfg.sigmoid = sigmoid ? SigmoidKind::Hard : SigmoidKind::Logistic;

    validateConfig(cfg, limits, path);

    // v1 has no per-tensor framing: the only structural check is that
    // the file holds exactly the bytes the header implies.
    LstmModel model(cfg, 0);
    const std::uint64_t expected = io::checkedAdd(
        kLegacyHeaderBytes,
        io::checkedMul(model.parameterCount(), 4, "legacy payload"),
        "legacy file size");
    if (file_size < expected)
        throw ArtifactError(
            ErrorKind::Truncated,
            "loadModel: " + path + " holds " +
                std::to_string(file_size) + " bytes, header implies " +
                std::to_string(expected));
    if (file_size > expected)
        throw ArtifactError(
            ErrorKind::Malformed,
            "loadModel: " + path + " carries trailing bytes past the "
                                   "declared tensors");

    const auto tensor = [&](float *data, std::size_t n,
                            const char *what) {
        is.read(reinterpret_cast<char *>(data),
                static_cast<std::streamsize>(n * sizeof(float)));
        if (!is)
            throw ArtifactError(ErrorKind::Truncated,
                                "loadModel: truncated tensor in " +
                                    path);
        requireFinite(data, n, what, path);
    };

    tensor(model.embedding().table.data(),
           model.embedding().table.size(), "embedding");
    for (LstmLayerParams &p : model.layers()) {
        for (tensor::Matrix *m :
             {&p.wf, &p.wi, &p.wc, &p.wo, &p.uf, &p.ui, &p.uc, &p.uo})
            tensor(m->data(), m->size(), "layer matrix");
        for (tensor::Vector *v : {&p.bf, &p.bi, &p.bc, &p.bo})
            tensor(v->data(), v->size(), "layer bias");
    }
    tensor(model.head().w.data(), model.head().w.size(),
           "head weights");
    tensor(model.head().b.data(), model.head().b.size(), "head bias");
    return model;
}

} // anonymous namespace

void
saveModel(const LstmModel &model, const std::string &path)
{
    const ModelConfig &cfg = model.config();
    io::ArtifactWriter w(io::kSchemaModel, kModelSchemaVersion);

    io::ByteWriter &c = w.chunk(kChunkConfig);
    c.u32(cfg.task == TaskKind::LanguageModel ? 1 : 0);
    c.u64(cfg.vocab);
    c.u64(cfg.embedSize);
    c.u64(cfg.hiddenSize);
    c.u64(cfg.numLayers);
    c.u64(cfg.numClasses);
    c.u32(cfg.sigmoid == SigmoidKind::Hard ? 1 : 0);

    w.chunk(kChunkEmbedding)
        .f32Array({model.embedding().table.data(),
                   model.embedding().table.size()});

    for (std::size_t l = 0; l < model.layers().size(); ++l) {
        const LstmLayerParams &p = model.layers()[l];
        io::ByteWriter &lw = w.chunk(layerTag(l));
        for (const tensor::Matrix *m :
             {&p.wf, &p.wi, &p.wc, &p.wo, &p.uf, &p.ui, &p.uc, &p.uo})
            lw.f32Array({m->data(), m->size()});
        for (const tensor::Vector *v : {&p.bf, &p.bi, &p.bc, &p.bo})
            lw.f32Array({v->data(), v->size()});
    }

    io::ByteWriter &h = w.chunk(kChunkHead);
    h.f32Array({model.head().w.data(), model.head().w.size()});
    h.f32Array({model.head().b.data(), model.head().b.size()});

    w.commit(path);
}

LstmModel
loadModel(const std::string &path, const io::ArtifactLimits &limits,
          obs::Observer *obs)
{
    try {
        if (io::isArtifactFile(path))
            return loadModelV2(path, limits);
        return loadModelLegacy(path, limits);
    } catch (const ArtifactError &e) {
        io::recordRejection(obs, e.kind());
        throw;
    }
}

void
verifyModelFile(const std::string &path,
                const io::ArtifactLimits &limits)
{
    (void)loadModel(path, limits);
}

bool
isModelFile(const std::string &path)
{
    std::uint32_t schema = 0;
    if (io::isArtifactFile(path, &schema))
        return schema == io::kSchemaModel;

    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::uint8_t b[4];
    is.read(reinterpret_cast<char *>(b), sizeof(b));
    if (!is)
        return false;
    const std::uint32_t magic = static_cast<std::uint32_t>(b[0]) |
                                static_cast<std::uint32_t>(b[1]) << 8 |
                                static_cast<std::uint32_t>(b[2]) << 16 |
                                static_cast<std::uint32_t>(b[3]) << 24;
    return magic == kLegacyMagic;
}

} // namespace nn
} // namespace mflstm
