#include "nn/serialize.hh"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace mflstm {
namespace nn {

namespace {

constexpr std::uint32_t kMagic = 0x4d464c31;  // "MFL1"
constexpr std::uint32_t kVersion = 1;

void
writeU32(std::ostream &os, std::uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

std::uint32_t
readU32(std::istream &is)
{
    std::uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        throw std::runtime_error("loadModel: truncated header");
    return v;
}

void
writeFloats(std::ostream &os, const float *data, std::size_t n)
{
    os.write(reinterpret_cast<const char *>(data),
             static_cast<std::streamsize>(n * sizeof(float)));
}

void
readFloats(std::istream &is, float *data, std::size_t n)
{
    is.read(reinterpret_cast<char *>(data),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!is)
        throw std::runtime_error("loadModel: truncated tensor");
}

} // anonymous namespace

void
saveModel(const LstmModel &model, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("saveModel: cannot open " + path);

    const ModelConfig &cfg = model.config();
    writeU32(os, kMagic);
    writeU32(os, kVersion);
    writeU32(os, cfg.task == TaskKind::LanguageModel ? 1 : 0);
    writeU32(os, static_cast<std::uint32_t>(cfg.vocab));
    writeU32(os, static_cast<std::uint32_t>(cfg.embedSize));
    writeU32(os, static_cast<std::uint32_t>(cfg.hiddenSize));
    writeU32(os, static_cast<std::uint32_t>(cfg.numLayers));
    writeU32(os, static_cast<std::uint32_t>(cfg.numClasses));
    writeU32(os, cfg.sigmoid == SigmoidKind::Hard ? 1 : 0);

    writeFloats(os, model.embedding().table.data(),
                model.embedding().table.size());
    for (const LstmLayerParams &p : model.layers()) {
        for (const tensor::Matrix *m :
             {&p.wf, &p.wi, &p.wc, &p.wo, &p.uf, &p.ui, &p.uc, &p.uo})
            writeFloats(os, m->data(), m->size());
        for (const tensor::Vector *v : {&p.bf, &p.bi, &p.bc, &p.bo})
            writeFloats(os, v->data(), v->size());
    }
    writeFloats(os, model.head().w.data(), model.head().w.size());
    writeFloats(os, model.head().b.data(), model.head().b.size());

    if (!os)
        throw std::runtime_error("saveModel: write failed for " + path);
}

LstmModel
loadModel(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("loadModel: cannot open " + path);

    if (readU32(is) != kMagic)
        throw std::runtime_error("loadModel: bad magic in " + path);
    if (readU32(is) != kVersion)
        throw std::runtime_error("loadModel: unsupported version");

    ModelConfig cfg;
    cfg.task = readU32(is) ? TaskKind::LanguageModel
                           : TaskKind::Classification;
    cfg.vocab = readU32(is);
    cfg.embedSize = readU32(is);
    cfg.hiddenSize = readU32(is);
    cfg.numLayers = readU32(is);
    cfg.numClasses = readU32(is);
    cfg.sigmoid = readU32(is) ? SigmoidKind::Hard : SigmoidKind::Logistic;

    LstmModel model(cfg, 0);
    readFloats(is, model.embedding().table.data(),
               model.embedding().table.size());
    for (LstmLayerParams &p : model.layers()) {
        for (tensor::Matrix *m :
             {&p.wf, &p.wi, &p.wc, &p.wo, &p.uf, &p.ui, &p.uc, &p.uo})
            readFloats(is, m->data(), m->size());
        for (tensor::Vector *v : {&p.bf, &p.bi, &p.bc, &p.bo})
            readFloats(is, v->data(), v->size());
    }
    readFloats(is, model.head().w.data(), model.head().w.size());
    readFloats(is, model.head().b.data(), model.head().b.size());
    return model;
}

bool
isModelFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::uint32_t magic = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    return is && magic == kMagic;
}

} // namespace nn
} // namespace mflstm
