/**
 * @file
 * Binary model serialization on the crash-safe artifact layer
 * (DESIGN.md §11). saveModel writes the chunked, CRC32-checksummed v2
 * container atomically; loadModel reads v2 and migrates the legacy v1
 * raw dump (pre-artifact cache files), in both cases with strictly
 * bounds-checked parsing: header dimensions are validated against
 * io::ArtifactLimits with checked multiplication *before* any tensor is
 * allocated, every payload is checked against the bytes actually
 * present, and models carrying NaN/Inf weights are rejected.
 */

#ifndef MFLSTM_NN_SERIALIZE_HH
#define MFLSTM_NN_SERIALIZE_HH

#include <string>

#include "io/artifact.hh"
#include "nn/model.hh"

namespace mflstm {
namespace obs {
class Observer;
} // namespace obs

namespace nn {

/**
 * Write a model to @p path as a v2 artifact (atomic: temp + fsync +
 * rename). @throws io::ArtifactError on I/O failure.
 */
void saveModel(const LstmModel &model, const std::string &path);

/**
 * Read a model from @p path — v2 artifact or legacy v1 dump. Either
 * returns a fully validated model or throws io::ArtifactError (a
 * std::runtime_error) with a typed reason; it never allocates from an
 * unvalidated header and never returns a partially-read model. When
 * @p obs is non-null a rejection bumps artifact_load_rejected_total
 * with the reason label before the error propagates.
 */
LstmModel loadModel(const std::string &path,
                    const io::ArtifactLimits &limits = {},
                    obs::Observer *obs = nullptr);

/**
 * loadModel and discard — the deep verification behind `mflstm fsck`.
 * @throws io::ArtifactError exactly as loadModel does.
 */
void verifyModelFile(const std::string &path,
                     const io::ArtifactLimits &limits = {});

/** True when @p path exists and carries a model magic (v1 or v2). */
bool isModelFile(const std::string &path);

} // namespace nn
} // namespace mflstm

#endif // MFLSTM_NN_SERIALIZE_HH
