/**
 * @file
 * Binary model serialization. Benchmark binaries train the six Table II
 * accuracy models once and cache them on disk; the format is a simple
 * versioned little-endian dump (config header + raw fp32 tensors).
 */

#ifndef MFLSTM_NN_SERIALIZE_HH
#define MFLSTM_NN_SERIALIZE_HH

#include <string>

#include "nn/model.hh"

namespace mflstm {
namespace nn {

/** Write a model to @p path; throws std::runtime_error on I/O failure. */
void saveModel(const LstmModel &model, const std::string &path);

/**
 * Read a model from @p path; throws std::runtime_error on I/O or format
 * errors (bad magic, version, or truncated tensors).
 */
LstmModel loadModel(const std::string &path);

/** True when @p path exists and carries the expected magic. */
bool isModelFile(const std::string &path);

} // namespace nn
} // namespace mflstm

#endif // MFLSTM_NN_SERIALIZE_HH
