/**
 * @file
 * End-to-end LSTM models for the paper's NLP application classes: an
 * embedding front-end, a stack of LSTM layers, and either a
 * classification head (SC / QA / ET tasks of Table II) or a per-step
 * language-model head (LM / MT tasks). These models are the accuracy-side
 * substrate — the role PyTorch plays in the paper's methodology.
 */

#ifndef MFLSTM_NN_MODEL_HH
#define MFLSTM_NN_MODEL_HH

#include <cstdint>
#include <span>
#include <vector>

#include "nn/lstm.hh"
#include "tensor/rng.hh"

namespace mflstm {
namespace nn {

/** Token-embedding table (vocab x embed). */
struct EmbeddingParams
{
    EmbeddingParams() = default;
    EmbeddingParams(std::size_t vocab, std::size_t embed_size)
        : table(vocab, embed_size)
    {}

    std::size_t vocab() const { return table.rows(); }
    std::size_t embedSize() const { return table.cols(); }

    void init(tensor::Rng &rng);

    Matrix table;
};

/** Affine output head (out x in weights, out bias). */
struct LinearParams
{
    LinearParams() = default;
    LinearParams(std::size_t in, std::size_t out) : w(out, in), b(out) {}

    std::size_t inSize() const { return w.cols(); }
    std::size_t outSize() const { return w.rows(); }

    void init(tensor::Rng &rng);

    Matrix w;
    Vector b;
};

/** y = W x + b. */
Vector linearForward(const LinearParams &p, const Vector &x);

/** Numerically stable in-place softmax. */
void softmaxInplace(std::span<float> logits);

/** Cross-entropy of a probability vector against a target index. */
float crossEntropy(std::span<const float> probs, std::size_t target);

/** The two output structures the Table II applications need. */
enum class TaskKind {
    Classification,  ///< one label per sequence (SC, QA, ET)
    LanguageModel,   ///< next-token prediction per step (LM, MT)
};

/** Shape and task of a model. */
struct ModelConfig
{
    TaskKind task = TaskKind::Classification;
    std::size_t vocab = 0;
    std::size_t embedSize = 0;
    std::size_t hiddenSize = 0;
    std::size_t numLayers = 1;
    std::size_t numClasses = 0;  ///< classes; ignored for LanguageModel
    SigmoidKind sigmoid = SigmoidKind::Logistic;

    std::size_t headClasses() const
    {
        return task == TaskKind::LanguageModel ? vocab : numClasses;
    }
};

/** One labelled sequence (classification tasks). */
struct Sample
{
    std::vector<std::int32_t> tokens;
    std::int32_t label = 0;
};

/**
 * Embedding + LSTM stack + head. The layer parameters are public through
 * accessors because the approximation passes of src/core operate on them
 * directly (they re-drive the forward pass with modified dataflow).
 */
class LstmModel
{
  public:
    LstmModel(const ModelConfig &cfg, std::uint64_t seed);

    const ModelConfig &config() const { return cfg_; }

    std::vector<LstmLayerParams> &layers() { return layers_; }
    const std::vector<LstmLayerParams> &layers() const { return layers_; }

    EmbeddingParams &embedding() { return embedding_; }
    const EmbeddingParams &embedding() const { return embedding_; }

    LinearParams &head() { return head_; }
    const LinearParams &head() const { return head_; }

    /** Look up embeddings for a token sequence. */
    std::vector<Vector> embed(std::span<const std::int32_t> tokens) const;

    /**
     * Run the LSTM stack over already-embedded inputs. Returns the top
     * layer's h_t sequence. When @p traces is non-null it receives one
     * trace vector per layer.
     */
    std::vector<Vector>
    runLayers(const std::vector<Vector> &inputs,
              std::vector<std::vector<LstmCellTrace>> *traces
                  = nullptr) const;

    /** Classification logits for a token sequence (uses the last h_t). */
    Vector classify(std::span<const std::int32_t> tokens) const;

    /** Per-step next-token logits for a language-model sequence. */
    std::vector<Vector>
    lmLogits(std::span<const std::int32_t> tokens) const;

    /** Total trainable parameter count. */
    std::size_t parameterCount() const;

  private:
    ModelConfig cfg_;
    EmbeddingParams embedding_;
    std::vector<LstmLayerParams> layers_;
    LinearParams head_;
};

/** Fraction of correctly classified samples. */
double classificationAccuracy(const LstmModel &model,
                              const std::vector<Sample> &data);

/** Fraction of correctly predicted next tokens over all steps. */
double lmNextTokenAccuracy(const LstmModel &model,
                           const std::vector<std::vector<std::int32_t>>
                               &seqs);

/** exp(mean cross-entropy) over all next-token predictions. */
double lmPerplexity(const LstmModel &model,
                    const std::vector<std::vector<std::int32_t>> &seqs);

} // namespace nn
} // namespace mflstm

#endif // MFLSTM_NN_MODEL_HH
