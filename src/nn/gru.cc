#include "nn/gru.hh"

#include <cassert>
#include <cmath>

#include "tensor/activations.hh"
#include "tensor/ops.hh"

namespace mflstm {
namespace nn {

GruLayerParams::GruLayerParams(std::size_t input_size,
                               std::size_t hidden_size)
    : wz(hidden_size, input_size), wr(hidden_size, input_size),
      wh(hidden_size, input_size), uz(hidden_size, hidden_size),
      ur(hidden_size, hidden_size), uh(hidden_size, hidden_size),
      bz(hidden_size), br(hidden_size), bh(hidden_size)
{}

void
GruLayerParams::init(tensor::Rng &rng)
{
    const std::size_t in = inputSize();
    const std::size_t hid = hiddenSize();
    for (Matrix *w : {&wz, &wr, &wh})
        rng.fillXavier(*w, in, hid);
    for (Matrix *u : {&uz, &ur, &uh})
        rng.fillXavier(*u, hid, hid);
}

Matrix
GruLayerParams::unitedW() const
{
    return tensor::vconcat({&wz, &wr, &wh});
}

std::vector<Vector>
gruProjectInputs(const GruLayerParams &p, const std::vector<Vector> &xs)
{
    const Matrix w = p.unitedW();
    std::vector<Vector> out;
    out.reserve(xs.size());
    for (const Vector &x : xs) {
        Vector proj;
        tensor::gemv(w, x, proj);
        out.push_back(std::move(proj));
    }
    return out;
}

Vector
gruCellForward(const GruLayerParams &p, const Vector &x_proj,
               const Vector &h_prev, SigmoidKind sk)
{
    const std::size_t hid = p.hiddenSize();
    assert(x_proj.size() == 3 * hid);
    assert(h_prev.size() == hid);

    auto sig = [sk](float v) {
        return sk == SigmoidKind::Logistic ? tensor::sigmoid(v)
                                           : tensor::hardSigmoid(v);
    };

    Vector rz, rr;
    tensor::gemv(p.uz, h_prev, rz);
    tensor::gemv(p.ur, h_prev, rr);

    Vector z(hid), r(hid), gated(hid);
    for (std::size_t j = 0; j < hid; ++j) {
        z[j] = sig(x_proj[j] + rz[j] + p.bz[j]);
        r[j] = sig(x_proj[hid + j] + rr[j] + p.br[j]);
        gated[j] = r[j] * h_prev[j];
    }

    Vector rh;
    tensor::gemv(p.uh, gated, rh);

    Vector h(hid);
    for (std::size_t j = 0; j < hid; ++j) {
        const float g = std::tanh(x_proj[2 * hid + j] + rh[j] + p.bh[j]);
        h[j] = (1.0f - z[j]) * h_prev[j] + z[j] * g;
    }
    return h;
}

std::vector<Vector>
gruLayerForward(const GruLayerParams &p, const std::vector<Vector> &xs,
                SigmoidKind sk)
{
    const std::vector<Vector> projs = gruProjectInputs(p, xs);
    Vector h(p.hiddenSize());
    std::vector<Vector> out;
    out.reserve(xs.size());
    for (const Vector &proj : projs) {
        h = gruCellForward(p, proj, h, sk);
        out.push_back(h);
    }
    return out;
}

} // namespace nn
} // namespace mflstm
