#include "nn/model.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hh"

namespace mflstm {
namespace nn {

void
EmbeddingParams::init(tensor::Rng &rng)
{
    rng.fillNormal(table, 0.0f, 0.1f);
}

void
LinearParams::init(tensor::Rng &rng)
{
    rng.fillXavier(w, inSize(), outSize());
    b.zero();
}

Vector
linearForward(const LinearParams &p, const Vector &x)
{
    Vector y;
    tensor::gemv(p.w, x, p.b, y);
    return y;
}

void
softmaxInplace(std::span<float> logits)
{
    assert(!logits.empty());
    const float mx = *std::max_element(logits.begin(), logits.end());
    float sum = 0.0f;
    for (float &v : logits) {
        v = std::exp(v - mx);
        sum += v;
    }
    for (float &v : logits)
        v /= sum;
}

float
crossEntropy(std::span<const float> probs, std::size_t target)
{
    assert(target < probs.size());
    constexpr float eps = 1e-12f;
    return -std::log(std::max(probs[target], eps));
}

LstmModel::LstmModel(const ModelConfig &cfg, std::uint64_t seed)
    : cfg_(cfg), embedding_(cfg.vocab, cfg.embedSize),
      head_(cfg.hiddenSize, cfg.headClasses())
{
    if (cfg.vocab == 0 || cfg.embedSize == 0 || cfg.hiddenSize == 0 ||
        cfg.numLayers == 0) {
        throw std::invalid_argument("LstmModel: zero dimension in config");
    }
    if (cfg.task == TaskKind::Classification && cfg.numClasses < 2)
        throw std::invalid_argument("LstmModel: need >= 2 classes");

    tensor::Rng rng(seed);
    embedding_.init(rng);
    layers_.reserve(cfg.numLayers);
    for (std::size_t l = 0; l < cfg.numLayers; ++l) {
        const std::size_t in = l == 0 ? cfg.embedSize : cfg.hiddenSize;
        layers_.emplace_back(in, cfg.hiddenSize);
        layers_.back().init(rng);
    }
    head_.init(rng);
}

std::vector<Vector>
LstmModel::embed(std::span<const std::int32_t> tokens) const
{
    std::vector<Vector> out;
    out.reserve(tokens.size());
    for (std::int32_t tok : tokens) {
        if (tok < 0 || static_cast<std::size_t>(tok) >= cfg_.vocab)
            throw std::out_of_range("LstmModel::embed: token out of vocab");
        Vector v(cfg_.embedSize);
        const auto row = embedding_.table.row(static_cast<std::size_t>(tok));
        std::copy(row.begin(), row.end(), v.begin());
        out.push_back(std::move(v));
    }
    return out;
}

std::vector<Vector>
LstmModel::runLayers(const std::vector<Vector> &inputs,
                     std::vector<std::vector<LstmCellTrace>> *traces) const
{
    if (traces) {
        traces->clear();
        traces->resize(layers_.size());
    }

    std::vector<Vector> acts = inputs;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        acts = lstmLayerForward(layers_[l], acts, cfg_.sigmoid,
                                traces ? &(*traces)[l] : nullptr);
    }
    return acts;
}

Vector
LstmModel::classify(std::span<const std::int32_t> tokens) const
{
    assert(cfg_.task == TaskKind::Classification);
    if (tokens.empty())
        throw std::invalid_argument("LstmModel::classify: empty sequence");
    const std::vector<Vector> top = runLayers(embed(tokens));
    return linearForward(head_, top.back());
}

std::vector<Vector>
LstmModel::lmLogits(std::span<const std::int32_t> tokens) const
{
    assert(cfg_.task == TaskKind::LanguageModel);
    const std::vector<Vector> top = runLayers(embed(tokens));
    std::vector<Vector> logits;
    logits.reserve(top.size());
    for (const Vector &h : top)
        logits.push_back(linearForward(head_, h));
    return logits;
}

std::size_t
LstmModel::parameterCount() const
{
    std::size_t n = embedding_.table.size();
    for (const LstmLayerParams &p : layers_) {
        n += p.wf.size() * 4 + p.uf.size() * 4 + p.bf.size() * 4;
    }
    n += head_.w.size() + head_.b.size();
    return n;
}

double
classificationAccuracy(const LstmModel &model,
                       const std::vector<Sample> &data)
{
    if (data.empty())
        return 0.0;
    std::size_t correct = 0;
    for (const Sample &s : data) {
        const Vector logits = model.classify(s.tokens);
        if (tensor::argmax(logits.span()) ==
            static_cast<std::size_t>(s.label)) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(data.size());
}

double
lmNextTokenAccuracy(const LstmModel &model,
                    const std::vector<std::vector<std::int32_t>> &seqs)
{
    std::size_t correct = 0;
    std::size_t total = 0;
    for (const auto &seq : seqs) {
        if (seq.size() < 2)
            continue;
        const auto logits = model.lmLogits(
            std::span(seq.data(), seq.size() - 1));
        for (std::size_t t = 0; t < logits.size(); ++t) {
            if (tensor::argmax(logits[t].span()) ==
                static_cast<std::size_t>(seq[t + 1])) {
                ++correct;
            }
            ++total;
        }
    }
    return total ? static_cast<double>(correct) /
                       static_cast<double>(total)
                 : 0.0;
}

double
lmPerplexity(const LstmModel &model,
             const std::vector<std::vector<std::int32_t>> &seqs)
{
    double sum = 0.0;
    std::size_t total = 0;
    for (const auto &seq : seqs) {
        if (seq.size() < 2)
            continue;
        auto logits = model.lmLogits(std::span(seq.data(), seq.size() - 1));
        for (std::size_t t = 0; t < logits.size(); ++t) {
            softmaxInplace(logits[t].span());
            sum += crossEntropy(logits[t].span(),
                                static_cast<std::size_t>(seq[t + 1]));
            ++total;
        }
    }
    return total ? std::exp(sum / static_cast<double>(total)) : 1.0;
}

} // namespace nn
} // namespace mflstm
