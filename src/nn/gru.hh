/**
 * @file
 * GRU cell and layer forward pass — the extension the paper sketches in
 * Section II-B ("the proposed methods can also be applied to GRUs with
 * simple adjustment"). The GRU has two gates (update z, reset r) and a
 * candidate state:
 *
 *   z_t = sigma(W_z x_t + U_z h_{t-1} + b_z)
 *   r_t = sigma(W_r x_t + U_r h_{t-1} + b_r)
 *   g_t = tanh(W_h x_t + U_h (r_t . h_{t-1}) + b_h)
 *   h_t = (1 - z_t) . h_{t-1} + z_t . g_t
 *
 * The inter-cell relevance adjustment lives in core/relevance.hh
 * (gruLinkRelevance).
 */

#ifndef MFLSTM_NN_GRU_HH
#define MFLSTM_NN_GRU_HH

#include <vector>

#include "nn/lstm.hh"

namespace mflstm {
namespace nn {

/** Parameters of one GRU layer (z/r/h order throughout). */
struct GruLayerParams
{
    GruLayerParams() = default;
    GruLayerParams(std::size_t input_size, std::size_t hidden_size);

    std::size_t inputSize() const { return wz.cols(); }
    std::size_t hiddenSize() const { return wz.rows(); }

    /** Xavier-initialise weights; biases zero. */
    void init(tensor::Rng &rng);

    /** United input matrix W_{z,r,h} (3H x E). */
    Matrix unitedW() const;

    Matrix wz, wr, wh;
    Matrix uz, ur, uh;
    Vector bz, br, bh;
};

/**
 * Precomputed input projections: element t is the 3H vector
 * W_{z,r,h} x_t (no bias), the GRU analogue of the per-layer Sgemm.
 */
std::vector<Vector> gruProjectInputs(const GruLayerParams &p,
                                     const std::vector<Vector> &xs);

/** One GRU cell step given the precomputed 3H input projection. */
Vector gruCellForward(const GruLayerParams &p, const Vector &x_proj,
                      const Vector &h_prev,
                      SigmoidKind sk = SigmoidKind::Logistic);

/** Full-layer GRU forward; returns h_t for every timestep. */
std::vector<Vector>
gruLayerForward(const GruLayerParams &p, const std::vector<Vector> &xs,
                SigmoidKind sk = SigmoidKind::Logistic);

} // namespace nn
} // namespace mflstm

#endif // MFLSTM_NN_GRU_HH
