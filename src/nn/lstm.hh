/**
 * @file
 * LSTM cell and layer forward pass implementing Eq. 1-5 of the paper,
 * with the gate-level tracing hooks that both the BPTT trainer and the
 * paper's approximation passes (relevance analysis, Dynamic Row Skip)
 * need. The heavyweight matrix products follow the cuDNN decomposition of
 * Section II-C: a per-layer Sgemm over the inputs (W x_t for all t) and a
 * per-cell Sgemv over the recurrent state (U h_{t-1}).
 */

#ifndef MFLSTM_NN_LSTM_HH
#define MFLSTM_NN_LSTM_HH

#include <cstddef>
#include <vector>

#include "tensor/matrix.hh"
#include "tensor/rng.hh"

namespace mflstm {
namespace nn {

using tensor::Matrix;
using tensor::Vector;

/** Which sigmoid variant the gates use (Section IV-A, Fig. 7). */
enum class SigmoidKind { Logistic, Hard };

/**
 * Parameters of one LSTM layer: four input projections W_* (hidden x
 * input), four recurrent projections U_* (hidden x hidden) and four
 * biases b_* — the f/i/c/o order of the paper throughout.
 */
struct LstmLayerParams
{
    LstmLayerParams() = default;
    LstmLayerParams(std::size_t input_size, std::size_t hidden_size);

    std::size_t inputSize() const { return wf.cols(); }
    std::size_t hiddenSize() const { return wf.rows(); }

    /** Xavier-initialise weights; biases zero except forget bias = 1. */
    void init(tensor::Rng &rng);

    /**
     * United recurrent matrix U_{f,i,c,o} (4H x H) as cuDNN concatenates
     * it for the per-cell Sgemv (Section II-C, circled 1).
     */
    Matrix unitedU() const;

    /** United input matrix W_{f,i,c,o} (4H x E), Section II-C circled 2. */
    Matrix unitedW() const;

    /** United bias (4H). */
    Vector unitedBias() const;

    Matrix wf, wi, wc, wo;
    Matrix uf, ui, uc, uo;
    Vector bf, bi, bc, bo;
};

/** Recurrent state threaded between cells: (h_{t-1}, c_{t-1}). */
struct LstmState
{
    LstmState() = default;
    explicit LstmState(std::size_t hidden_size)
        : h(hidden_size), c(hidden_size)
    {}

    Vector h;
    Vector c;
};

/**
 * Everything one cell computed, cached for BPTT and for the gate
 * statistics the approximation passes consume. `x_proj` holds the four
 * pre-activation input projections W_* x_t + b_* in f/i/c/o order.
 */
struct LstmCellTrace
{
    Vector f;       ///< forget gate, Eq. 1
    Vector i;       ///< input gate, Eq. 2
    Vector g;       ///< candidate tanh(...) inside Eq. 3
    Vector o;       ///< output gate, Eq. 4
    Vector c;       ///< new cell state, Eq. 3
    Vector h;       ///< new output, Eq. 5
    Vector c_prev;  ///< cell state entering this cell
    Vector h_prev;  ///< output entering this cell (the context link)
};

/**
 * Precomputed input projections for one layer: the result of the
 * per-layer Sgemm(W_{f,i,c,o}, x) in Algorithm 1 line 2. Element t holds
 * the four H-sized chunks for timestep t, concatenated (4H).
 */
std::vector<Vector> projectInputs(const LstmLayerParams &p,
                                  const std::vector<Vector> &xs);

/**
 * One LSTM cell step (Eq. 1-5) given the precomputed input projection for
 * this timestep. @param x_proj is the 4H vector W_{f,i,c,o} x_t (no bias).
 */
LstmState lstmCellForward(const LstmLayerParams &p, const Vector &x_proj,
                          const LstmState &prev,
                          SigmoidKind sk = SigmoidKind::Logistic,
                          LstmCellTrace *trace = nullptr);

/**
 * Full-layer forward: runs the per-layer input Sgemm then chains the
 * cells. Returns h_t for every timestep.
 *
 * @param traces  when non-null, receives one LstmCellTrace per timestep.
 */
std::vector<Vector> lstmLayerForward(const LstmLayerParams &p,
                                     const std::vector<Vector> &xs,
                                     SigmoidKind sk = SigmoidKind::Logistic,
                                     std::vector<LstmCellTrace> *traces
                                         = nullptr);

} // namespace nn
} // namespace mflstm

#endif // MFLSTM_NN_LSTM_HH
