#include "nn/train.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <random>

#include "tensor/activations.hh"
#include "tensor/ops.hh"

namespace mflstm {
namespace nn {

namespace {

/** d(sigmoid)/dz from the cached output, respecting the gate variant. */
float
gateGrad(SigmoidKind sk, float s)
{
    if (sk == SigmoidKind::Logistic)
        return tensor::sigmoidGradFromOutput(s);
    // Hard sigmoid: slope 0.25 strictly inside the clamp, 0 at the rails.
    return (s > 0.0f && s < 1.0f) ? 0.25f : 0.0f;
}

} // anonymous namespace

LstmLayerGrads::LstmLayerGrads(std::size_t input_size,
                               std::size_t hidden_size)
    : wf(hidden_size, input_size), wi(hidden_size, input_size),
      wc(hidden_size, input_size), wo(hidden_size, input_size),
      uf(hidden_size, hidden_size), ui(hidden_size, hidden_size),
      uc(hidden_size, hidden_size), uo(hidden_size, hidden_size),
      bf(hidden_size), bi(hidden_size), bc(hidden_size), bo(hidden_size)
{}

void
LstmLayerGrads::zero()
{
    for (Matrix *m : {&wf, &wi, &wc, &wo, &uf, &ui, &uc, &uo})
        m->zero();
    for (Vector *v : {&bf, &bi, &bc, &bo})
        v->zero();
}

ModelGrads::ModelGrads(const LstmModel &model)
    : embedding(model.embedding().table.rows(),
                model.embedding().table.cols()),
      headW(model.head().w.rows(), model.head().w.cols()),
      headB(model.head().b.size())
{
    for (const LstmLayerParams &p : model.layers())
        layers.emplace_back(p.inputSize(), p.hiddenSize());
}

void
ModelGrads::zero()
{
    embedding.zero();
    for (LstmLayerGrads &g : layers)
        g.zero();
    headW.zero();
    headB.zero();
}

Trainer::Trainer(LstmModel &model, const TrainConfig &cfg)
    : model_(model), cfg_(cfg), grads_(model)
{
    registerAll();
}

void
Trainer::registerPair(float *param, float *grad, std::size_t n, bool decay)
{
    slots_.push_back({param, grad, n, m_.size(), decay});
    m_.resize(m_.size() + n, 0.0);
    v_.resize(v_.size() + n, 0.0);
}

void
Trainer::registerAll()
{
    registerPair(model_.embedding().table.data(), grads_.embedding.data(),
                 grads_.embedding.size());

    for (std::size_t l = 0; l < model_.layers().size(); ++l) {
        LstmLayerParams &p = model_.layers()[l];
        LstmLayerGrads &g = grads_.layers[l];
        Matrix *pm[] = {&p.wf, &p.wi, &p.wc, &p.wo,
                        &p.uf, &p.ui, &p.uc, &p.uo};
        Matrix *gm[] = {&g.wf, &g.wi, &g.wc, &g.wo,
                        &g.uf, &g.ui, &g.uc, &g.uo};
        for (int k = 0; k < 8; ++k) {
            // Recurrent matrices (the last four) carry the decay.
            registerPair(pm[k]->data(), gm[k]->data(), gm[k]->size(),
                         k >= 4);
        }
        Vector *pv[] = {&p.bf, &p.bi, &p.bc, &p.bo};
        Vector *gv[] = {&g.bf, &g.bi, &g.bc, &g.bo};
        for (int k = 0; k < 4; ++k)
            registerPair(pv[k]->data(), gv[k]->data(), gv[k]->size());
    }

    registerPair(model_.head().w.data(), grads_.headW.data(),
                 grads_.headW.size());
    registerPair(model_.head().b.data(), grads_.headB.data(),
                 grads_.headB.size());
}

double
Trainer::gradNorm() const
{
    double acc = 0.0;
    for (const Slot &s : slots_)
        for (std::size_t i = 0; i < s.size; ++i)
            acc += static_cast<double>(s.grad[i]) * s.grad[i];
    return std::sqrt(acc);
}

void
Trainer::scaleGrads(double factor)
{
    for (const Slot &s : slots_)
        for (std::size_t i = 0; i < s.size; ++i)
            s.grad[i] = static_cast<float>(s.grad[i] * factor);
}

void
Trainer::applyAdam()
{
    if (cfg_.clipNorm > 0.0) {
        const double norm = gradNorm();
        if (norm > cfg_.clipNorm)
            scaleGrads(cfg_.clipNorm / norm);
    }

    ++step_;
    const double bc1 = 1.0 - std::pow(cfg_.beta1,
                                      static_cast<double>(step_));
    const double bc2 = 1.0 - std::pow(cfg_.beta2,
                                      static_cast<double>(step_));

    for (const Slot &s : slots_) {
        for (std::size_t i = 0; i < s.size; ++i) {
            const double g = s.grad[i];
            double &m = m_[s.momentOffset + i];
            double &v = v_[s.momentOffset + i];
            m = cfg_.beta1 * m + (1.0 - cfg_.beta1) * g;
            v = cfg_.beta2 * v + (1.0 - cfg_.beta2) * g * g;
            const double mhat = m / bc1;
            const double vhat = v / bc2;
            const double decay =
                s.decay ? cfg_.recurrentDecay * s.param[i] : 0.0;
            s.param[i] -= static_cast<float>(
                cfg_.lr *
                (mhat / (std::sqrt(vhat) + cfg_.epsilon) + decay));
        }
    }
}

double
Trainer::computeGradients(const std::vector<std::int32_t> &tokens,
                          std::int32_t label, bool language_model)
{
    const std::size_t seq = language_model ? tokens.size() - 1
                                           : tokens.size();
    assert(seq >= 1);
    const std::size_t num_layers = model_.layers().size();
    const SigmoidKind sk = model_.config().sigmoid;

    grads_.zero();

    // ---- Forward with caches ----------------------------------------
    std::vector<std::vector<Vector>> layer_inputs(num_layers);
    std::vector<std::vector<Vector>> projs(num_layers);
    std::vector<std::vector<LstmCellTrace>> traces(num_layers);

    layer_inputs[0] =
        model_.embed(std::span(tokens.data(), seq));
    for (std::size_t l = 0; l < num_layers; ++l) {
        const LstmLayerParams &p = model_.layers()[l];
        projs[l] = projectInputs(p, layer_inputs[l]);
        traces[l].resize(seq);

        LstmState state(p.hiddenSize());
        std::vector<Vector> outs;
        outs.reserve(seq);
        for (std::size_t t = 0; t < seq; ++t) {
            state = lstmCellForward(p, projs[l][t], state, sk,
                                    &traces[l][t]);
            outs.push_back(state.h);
        }
        if (l + 1 < num_layers)
            layer_inputs[l + 1] = std::move(outs);
        else
            layer_inputs.push_back(std::move(outs));  // top outputs
    }
    const std::vector<Vector> &top = layer_inputs[num_layers];

    // ---- Head loss + gradient seeding -------------------------------
    const std::size_t hid = model_.config().hiddenSize;
    std::vector<Vector> dh_out(seq, Vector(hid));
    double loss = 0.0;
    std::size_t loss_terms = 0;

    auto seed_step = [&](std::size_t t, std::size_t target) {
        Vector logits = linearForward(model_.head(), top[t]);
        softmaxInplace(logits.span());
        loss += crossEntropy(logits.span(), target);
        ++loss_terms;

        // dL/dlogits = p - onehot(target)
        logits[target] -= 1.0f;
        tensor::ger(1.0f, logits, top[t], grads_.headW);
        for (std::size_t k = 0; k < logits.size(); ++k)
            grads_.headB[k] += logits[k];
        Vector dh;
        tensor::gemvT(model_.head().w, logits, dh);
        tensor::add(dh_out[t].span(), dh.span(), dh_out[t].span());
    };

    if (language_model) {
        for (std::size_t t = 0; t < seq; ++t)
            seed_step(t, static_cast<std::size_t>(tokens[t + 1]));
    } else {
        seed_step(seq - 1, static_cast<std::size_t>(label));
    }

    // ---- Backward through the stack ----------------------------------
    for (std::size_t li = num_layers; li-- > 0;) {
        const LstmLayerParams &p = model_.layers()[li];
        LstmLayerGrads &g = grads_.layers[li];
        const std::size_t in_size = p.inputSize();

        std::vector<Vector> dx(seq, Vector(in_size));
        Vector dh_next(hid);
        Vector dc_next(hid);

        for (std::size_t t = seq; t-- > 0;) {
            const LstmCellTrace &tr = traces[li][t];
            Vector dzf(hid), dzi(hid), dzc(hid), dzo(hid);
            Vector dc(hid);

            for (std::size_t j = 0; j < hid; ++j) {
                const float dh = dh_out[t][j] + dh_next[j];
                const float tc = std::tanh(tr.c[j]);
                const float do_ = dh * tc;
                dzo[j] = do_ * gateGrad(sk, tr.o[j]);
                dc[j] = dc_next[j] + dh * tr.o[j] * (1.0f - tc * tc);
                dzf[j] = dc[j] * tr.c_prev[j] * gateGrad(sk, tr.f[j]);
                dzi[j] = dc[j] * tr.g[j] * gateGrad(sk, tr.i[j]);
                dzc[j] = dc[j] * tr.i[j] *
                         tensor::tanhGradFromOutput(tr.g[j]);
                dc_next[j] = dc[j] * tr.f[j];
            }

            // Parameter gradients.
            tensor::ger(1.0f, dzf, tr.h_prev, g.uf);
            tensor::ger(1.0f, dzi, tr.h_prev, g.ui);
            tensor::ger(1.0f, dzc, tr.h_prev, g.uc);
            tensor::ger(1.0f, dzo, tr.h_prev, g.uo);
            const Vector &x = layer_inputs[li][t];
            tensor::ger(1.0f, dzf, x, g.wf);
            tensor::ger(1.0f, dzi, x, g.wi);
            tensor::ger(1.0f, dzc, x, g.wc);
            tensor::ger(1.0f, dzo, x, g.wo);
            for (std::size_t j = 0; j < hid; ++j) {
                g.bf[j] += dzf[j];
                g.bi[j] += dzi[j];
                g.bc[j] += dzc[j];
                g.bo[j] += dzo[j];
            }

            // Upstream gradients.
            Vector tmp;
            dh_next.zero();
            tensor::gemvT(p.uf, dzf, tmp);
            tensor::add(dh_next.span(), tmp.span(), dh_next.span());
            tensor::gemvT(p.ui, dzi, tmp);
            tensor::add(dh_next.span(), tmp.span(), dh_next.span());
            tensor::gemvT(p.uc, dzc, tmp);
            tensor::add(dh_next.span(), tmp.span(), dh_next.span());
            tensor::gemvT(p.uo, dzo, tmp);
            tensor::add(dh_next.span(), tmp.span(), dh_next.span());

            tensor::gemvT(p.wf, dzf, tmp);
            tensor::add(dx[t].span(), tmp.span(), dx[t].span());
            tensor::gemvT(p.wi, dzi, tmp);
            tensor::add(dx[t].span(), tmp.span(), dx[t].span());
            tensor::gemvT(p.wc, dzc, tmp);
            tensor::add(dx[t].span(), tmp.span(), dx[t].span());
            tensor::gemvT(p.wo, dzo, tmp);
            tensor::add(dx[t].span(), tmp.span(), dx[t].span());
        }

        if (li > 0) {
            dh_out = std::move(dx);
        } else {
            // Embedding gradient: scatter-add dx into the token rows.
            for (std::size_t t = 0; t < seq; ++t) {
                const auto tok = static_cast<std::size_t>(tokens[t]);
                auto row = grads_.embedding.row(tok);
                for (std::size_t k = 0; k < row.size(); ++k)
                    row[k] += dx[t][k];
            }
        }
    }

    return loss_terms ? loss / static_cast<double>(loss_terms) : 0.0;
}

double
Trainer::stepClassification(const Sample &sample)
{
    assert(model_.config().task == TaskKind::Classification);
    const double loss = computeGradients(sample.tokens, sample.label,
                                         false);
    applyAdam();
    return loss;
}

double
Trainer::stepLanguageModel(const std::vector<std::int32_t> &seq)
{
    assert(model_.config().task == TaskKind::LanguageModel);
    assert(seq.size() >= 2);
    const double loss = computeGradients(seq, 0, true);
    applyAdam();
    return loss;
}

double
Trainer::trainClassification(const std::vector<Sample> &data,
                             std::size_t epochs)
{
    std::mt19937_64 shuffler(cfg_.shuffleSeed);
    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);

    double last = 0.0;
    for (std::size_t e = 0; e < epochs; ++e) {
        std::shuffle(order.begin(), order.end(), shuffler);
        double acc = 0.0;
        for (std::size_t idx : order)
            acc += stepClassification(data[idx]);
        last = data.empty() ? 0.0
                            : acc / static_cast<double>(data.size());
    }
    return last;
}

double
Trainer::trainLanguageModel(
    const std::vector<std::vector<std::int32_t>> &seqs, std::size_t epochs)
{
    std::mt19937_64 shuffler(cfg_.shuffleSeed);
    std::vector<std::size_t> order(seqs.size());
    std::iota(order.begin(), order.end(), 0);

    double last = 0.0;
    for (std::size_t e = 0; e < epochs; ++e) {
        std::shuffle(order.begin(), order.end(), shuffler);
        double acc = 0.0;
        for (std::size_t idx : order)
            acc += stepLanguageModel(seqs[idx]);
        last = seqs.empty() ? 0.0
                            : acc / static_cast<double>(seqs.size());
    }
    return last;
}

} // namespace nn
} // namespace mflstm
