#include "serve/persist.hh"

#include <cmath>

#include "quant/qformat.hh"

namespace mflstm {
namespace serve {

namespace {

using io::ArtifactError;
using io::ErrorKind;

/**
 * v1: thresholds are (alphaInter, alphaIntra) and plans carry no
 *     precision (everything implicitly fp32);
 * v2: adds a u32 QuantMode per ladder rung and per plan;
 * v3: plans may carry explicit ScheduleDecisions (PlanKind::Tuned,
 *     DESIGN.md §14) and the fingerprint records whether the engine
 *     was built with Options::tunePlans. v1/v2 files stay loadable —
 *     their plans carry no decisions and tunedPlans defaults to false;
 * v4: plans may use PlanKind::Persistent and per-layer decisions carry
 *     a weight-residency tag (DESIGN.md §15). v1-v3 files stay
 *     loadable — residency defaults to none.
 * v5: the fingerprint records the hw registry backend id the plans were
 *     built under (DESIGN.md §17). v1-v4 files stay loadable — their
 *     backend id is empty, which the warm constructor treats as a
 *     wildcard (weights CRC + shape still guard them).
 */
constexpr std::uint32_t kEngineSchemaVersion = 5;

constexpr std::uint32_t kMaxQuantMode =
    static_cast<std::uint32_t>(quant::QuantMode::Int4);

quant::QuantMode
readQuantMode(io::ByteReader &r, const std::string &path)
{
    const std::uint32_t qm = r.u32();
    if (qm > kMaxQuantMode)
        throw ArtifactError(ErrorKind::Malformed,
                            "loadEngineState: " + path +
                                ": unknown quant mode " +
                                std::to_string(qm));
    return static_cast<quant::QuantMode>(qm);
}
constexpr std::uint32_t kChunkFingerprint = io::fourcc('E', 'F', 'P', 'R');
constexpr std::uint32_t kChunkShape = io::fourcc('E', 'S', 'H', 'P');
constexpr std::uint32_t kChunkLadder = io::fourcc('E', 'L', 'A', 'D');

/** The newest plan kind each schema version can legitimately carry. */
std::uint32_t
maxPlanKindFor(std::uint32_t version)
{
    return static_cast<std::uint32_t>(
        version >= 4   ? runtime::PlanKind::Persistent
        : version >= 3 ? runtime::PlanKind::Tuned
                       : runtime::PlanKind::ZeroPruning);
}

std::uint32_t
rungPlanTag(std::size_t rung)
{
    return io::indexedTag('E', 'P', rung);
}

void
requireFinite(double v, const char *what, const std::string &path)
{
    if (!std::isfinite(v))
        throw ArtifactError(ErrorKind::NonFinite,
                            "loadEngineState: " + path +
                                ": non-finite " + what);
}

void
writePlan(io::ByteWriter &w, const runtime::ExecutionPlan &plan)
{
    w.u32(static_cast<std::uint32_t>(plan.kind));
    w.u32(static_cast<std::uint32_t>(plan.quantMode));
    w.f64(plan.pruneFraction);
    w.u64(plan.inter.size());
    for (const runtime::LayerInterPlan &p : plan.inter) {
        std::vector<std::uint64_t> sizes(p.tissueSizes.begin(),
                                         p.tissueSizes.end());
        w.u64Array(sizes);
    }
    w.u64(plan.intra.size());
    for (const runtime::LayerIntraPlan &p : plan.intra)
        w.f64(p.skipFraction);
    // v3: explicit per-layer decisions (empty marker for preset plans).
    w.u32(plan.hasExplicitDecisions() ? 1 : 0);
    if (plan.hasExplicitDecisions()) {
        w.u64(plan.decisions.layers.size());
        for (const runtime::LayerSchedule &ls : plan.decisions.layers) {
            std::vector<std::uint64_t> sizes(ls.tissueSizes.begin(),
                                             ls.tissueSizes.end());
            w.u64Array(sizes);
            w.u32(static_cast<std::uint32_t>(ls.skipPath));
            w.f64(ls.skipFraction);
            w.u32(static_cast<std::uint32_t>(ls.flagFusion));
            w.u32(static_cast<std::uint32_t>(ls.quant));
            w.u32(ls.prunedCsr ? 1 : 0);
            w.f64(ls.pruneFraction);
            w.u64(ls.batch);
            w.u32(static_cast<std::uint32_t>(ls.residency));  // v4
        }
    }
}

runtime::ScheduleDecisions
readDecisions(io::ByteReader &r, std::uint32_t version,
              const io::ArtifactLimits &limits, const std::string &path)
{
    runtime::ScheduleDecisions decisions;
    const std::uint64_t layers = r.u64();
    if (layers == 0 || layers > limits.maxDim)
        throw ArtifactError(ErrorKind::LimitExceeded,
                            "loadEngineState: " + path +
                                ": absurd decision layer count");
    for (std::uint64_t l = 0; l < layers; ++l) {
        runtime::LayerSchedule ls;
        for (std::uint64_t s : r.u64Array()) {
            if (s > limits.maxDim)
                throw ArtifactError(ErrorKind::LimitExceeded,
                                    "loadEngineState: " + path +
                                        ": absurd tissue size");
            ls.tissueSizes.push_back(static_cast<std::size_t>(s));
        }
        const std::uint32_t skip_path = r.u32();
        if (skip_path >
            static_cast<std::uint32_t>(runtime::SkipPath::HwCrm))
            throw ArtifactError(ErrorKind::Malformed,
                                "loadEngineState: " + path +
                                    ": unknown skip path");
        ls.skipPath = static_cast<runtime::SkipPath>(skip_path);
        ls.skipFraction = r.f64();
        requireFinite(ls.skipFraction, "skipFraction", path);
        const std::uint32_t fusion = r.u32();
        if (fusion > static_cast<std::uint32_t>(
                         runtime::FlagFusion::FusedEpilogue))
            throw ArtifactError(ErrorKind::Malformed,
                                "loadEngineState: " + path +
                                    ": unknown flag fusion");
        ls.flagFusion = static_cast<runtime::FlagFusion>(fusion);
        ls.quant = readQuantMode(r, path);
        ls.prunedCsr = r.u32() != 0;
        ls.pruneFraction = r.f64();
        requireFinite(ls.pruneFraction, "pruneFraction", path);
        const std::uint64_t batch = r.u64();
        if (batch > limits.maxDim)
            throw ArtifactError(ErrorKind::LimitExceeded,
                                "loadEngineState: " + path +
                                    ": absurd layer batch");
        ls.batch = static_cast<std::size_t>(batch);
        if (version >= 4) {
            const std::uint32_t res = r.u32();
            if (res > static_cast<std::uint32_t>(
                          runtime::WeightResidency::Regfile))
                throw ArtifactError(ErrorKind::Malformed,
                                    "loadEngineState: " + path +
                                        ": unknown residency");
            ls.residency = static_cast<runtime::WeightResidency>(res);
        }
        decisions.layers.push_back(std::move(ls));
    }
    try {
        decisions.validate();
    } catch (const std::exception &e) {
        throw ArtifactError(ErrorKind::Malformed,
                            "loadEngineState: " + path + ": " +
                                e.what());
    }
    return decisions;
}

runtime::ExecutionPlan
readPlan(io::ByteReader &r, std::uint32_t version,
         const io::ArtifactLimits &limits, const std::string &path)
{
    runtime::ExecutionPlan plan;
    const std::uint32_t kind = r.u32();
    if (kind > maxPlanKindFor(version))
        throw ArtifactError(ErrorKind::Malformed,
                            "loadEngineState: " + path +
                                ": unknown plan kind " +
                                std::to_string(kind));
    plan.kind = static_cast<runtime::PlanKind>(kind);
    if (version >= 2)
        plan.quantMode = readQuantMode(r, path);
    plan.pruneFraction = r.f64();
    requireFinite(plan.pruneFraction, "pruneFraction", path);

    const std::uint64_t inter_count = r.u64();
    if (inter_count > limits.maxDim)
        throw ArtifactError(ErrorKind::LimitExceeded,
                            "loadEngineState: " + path +
                                ": absurd inter-plan layer count");
    plan.inter.reserve(static_cast<std::size_t>(inter_count));
    for (std::uint64_t l = 0; l < inter_count; ++l) {
        runtime::LayerInterPlan p;
        for (std::uint64_t s : r.u64Array()) {
            if (s > limits.maxDim)
                throw ArtifactError(ErrorKind::LimitExceeded,
                                    "loadEngineState: " + path +
                                        ": absurd tissue size");
            p.tissueSizes.push_back(static_cast<std::size_t>(s));
        }
        plan.inter.push_back(std::move(p));
    }

    const std::uint64_t intra_count = r.u64();
    if (intra_count > limits.maxDim)
        throw ArtifactError(ErrorKind::LimitExceeded,
                            "loadEngineState: " + path +
                                ": absurd intra-plan layer count");
    plan.intra.reserve(static_cast<std::size_t>(intra_count));
    for (std::uint64_t l = 0; l < intra_count; ++l) {
        runtime::LayerIntraPlan p;
        p.skipFraction = r.f64();
        requireFinite(p.skipFraction, "skipFraction", path);
        if (p.skipFraction < 0.0 || p.skipFraction > 1.0)
            throw ArtifactError(ErrorKind::Malformed,
                                "loadEngineState: " + path +
                                    ": skipFraction outside [0, 1]");
        plan.intra.push_back(p);
    }
    if (version >= 3) {
        const std::uint32_t has_decisions = r.u32();
        if (has_decisions > 1)
            throw ArtifactError(ErrorKind::Malformed,
                                "loadEngineState: " + path +
                                    ": bad decisions marker");
        if (has_decisions)
            plan.decisions = readDecisions(r, version, limits, path);
    }
    r.expectEnd();
    return plan;
}

EngineWarmState
parseState(const io::ArtifactReader &reader,
           const io::ArtifactLimits &limits, const std::string &path)
{
    const std::uint32_t version = reader.schemaVersion();
    if (version < 1 || version > kEngineSchemaVersion)
        throw ArtifactError(
            ErrorKind::BadVersion,
            "loadEngineState: " + path +
                ": unsupported engine-state schema version " +
                std::to_string(version));

    EngineWarmState state;
    {
        io::ByteReader r = reader.chunk(kChunkFingerprint);
        state.modelWeightsCrc = r.u32();
        const std::uint32_t kind = r.u32();
        if (kind > maxPlanKindFor(version))
            throw ArtifactError(ErrorKind::Malformed,
                                "loadEngineState: " + path +
                                    ": unknown plan kind");
        state.plan = static_cast<runtime::PlanKind>(kind);
        state.pruneFraction = r.f64();
        requireFinite(state.pruneFraction, "pruneFraction", path);
        if (version >= 3) {
            const std::uint32_t tuned = r.u32();
            if (tuned > 1)
                throw ArtifactError(ErrorKind::Malformed,
                                    "loadEngineState: " + path +
                                        ": bad tunedPlans flag");
            state.tunedPlans = tuned != 0;
        }
        if (version >= 5) {
            const std::vector<std::int8_t> raw = r.u8Array();
            if (!raw.empty())
                state.backendId.assign(
                    reinterpret_cast<const char *>(raw.data()),
                    raw.size());
        }
        r.expectEnd();
    }
    {
        io::ByteReader r = reader.chunk(kChunkShape);
        const std::uint64_t layers = r.u64();
        if (layers == 0 || layers > limits.maxDim)
            throw ArtifactError(ErrorKind::LimitExceeded,
                                "loadEngineState: " + path +
                                    ": absurd shape layer count");
        for (std::uint64_t l = 0; l < layers; ++l) {
            runtime::LstmLayerShape ls;
            const std::uint64_t in = r.u64();
            const std::uint64_t hid = r.u64();
            const std::uint64_t len = r.u64();
            if (in == 0 || hid == 0 || len == 0 ||
                in > limits.maxDim || hid > limits.maxDim ||
                len > limits.maxDim)
                throw ArtifactError(ErrorKind::LimitExceeded,
                                    "loadEngineState: " + path +
                                        ": absurd layer shape");
            ls.inputSize = static_cast<std::size_t>(in);
            ls.hiddenSize = static_cast<std::size_t>(hid);
            ls.length = static_cast<std::size_t>(len);
            state.shape.layers.push_back(ls);
        }
        r.expectEnd();
    }
    {
        io::ByteReader r = reader.chunk(kChunkLadder);
        const std::uint64_t rungs = r.u64();
        if (rungs == 0 || rungs > limits.maxChunks)
            throw ArtifactError(ErrorKind::Malformed,
                                "loadEngineState: " + path +
                                    ": absurd rung count");
        for (std::uint64_t i = 0; i < rungs; ++i) {
            core::ThresholdSet set;
            set.alphaInter = r.f64();
            set.alphaIntra = r.f64();
            if (version >= 2)
                set.quant = readQuantMode(r, path);
            requireFinite(set.alphaInter, "alphaInter", path);
            requireFinite(set.alphaIntra, "alphaIntra", path);
            if (set.alphaInter < 0.0 || set.alphaIntra < 0.0 ||
                set.alphaIntra >= 1.0)
                throw ArtifactError(ErrorKind::Malformed,
                                    "loadEngineState: " + path +
                                        ": threshold out of range");
            state.ladder.push_back(set);
        }
        r.expectEnd();
    }
    for (std::size_t i = 0; i < state.ladder.size(); ++i) {
        io::ByteReader r = reader.chunk(rungPlanTag(i));
        state.plans.push_back(readPlan(r, version, limits, path));
    }
    return state;
}

} // anonymous namespace

void
saveEngineState(const EngineWarmState &state, const std::string &path)
{
    io::ArtifactWriter w(io::kSchemaEngineState, kEngineSchemaVersion);

    io::ByteWriter &f = w.chunk(kChunkFingerprint);
    f.u32(state.modelWeightsCrc);
    f.u32(static_cast<std::uint32_t>(state.plan));
    f.f64(state.pruneFraction);
    f.u32(state.tunedPlans ? 1 : 0);
    f.u8Array({reinterpret_cast<const std::int8_t *>(
                   state.backendId.data()),
               state.backendId.size()});  // v5

    io::ByteWriter &s = w.chunk(kChunkShape);
    s.u64(state.shape.layers.size());
    for (const runtime::LstmLayerShape &ls : state.shape.layers) {
        s.u64(ls.inputSize);
        s.u64(ls.hiddenSize);
        s.u64(ls.length);
    }

    io::ByteWriter &l = w.chunk(kChunkLadder);
    l.u64(state.ladder.size());
    for (const core::ThresholdSet &set : state.ladder) {
        l.f64(set.alphaInter);
        l.f64(set.alphaIntra);
        l.u32(static_cast<std::uint32_t>(set.quant));
    }

    for (std::size_t i = 0; i < state.plans.size(); ++i)
        writePlan(w.chunk(rungPlanTag(i)), state.plans[i]);

    w.commit(path);
}

void
saveEngineState(const InferenceEngine &engine, const std::string &path)
{
    saveEngineState(engine.exportWarmState(), path);
}

EngineWarmState
loadEngineState(const std::string &path, const io::ArtifactLimits &limits,
                obs::Observer *obs)
{
    try {
        const io::ArtifactReader reader(path, io::kSchemaEngineState,
                                        limits);
        EngineWarmState state = parseState(reader, limits, path);
        if (state.ladder.size() != state.plans.size())
            throw ArtifactError(ErrorKind::Malformed,
                                "loadEngineState: " + path +
                                    ": ladder/plan count mismatch");
        return state;
    } catch (const ArtifactError &e) {
        io::recordRejection(obs, e.kind());
        throw;
    }
}

void
verifyEngineStateFile(const std::string &path,
                      const io::ArtifactLimits &limits)
{
    (void)loadEngineState(path, limits);
}

} // namespace serve
} // namespace mflstm
