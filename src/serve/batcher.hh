/**
 * @file
 * Dynamic batcher: blocks for the first request, then greedily drains
 * whatever else is already queued, up to the batch bound. Under light
 * load a request never waits for company (batch of 1 leaves
 * immediately); under heavy load batches fill to maxBatch and every
 * weight fetch is amortised over that many sequences — the serving-time
 * extension of the paper's weight-reuse principle.
 */

#ifndef MFLSTM_SERVE_BATCHER_HH
#define MFLSTM_SERVE_BATCHER_HH

#include <cstddef>
#include <vector>

#include "serve/queue.hh"

namespace mflstm {
namespace serve {

class DynamicBatcher
{
  public:
    /** @param max_batch sequence bound per batch; must be >= 1. */
    DynamicBatcher(RequestQueue &queue, std::size_t max_batch);

    /**
     * Block for the next batch. The result is ordered
     * priority-descending (FIFO ties) and has 1..maxBatch() items;
     * empty means the queue closed and drained — stop consuming.
     */
    std::vector<QueuedRequest> nextBatch();

    std::size_t maxBatch() const { return maxBatch_; }

  private:
    RequestQueue &queue_;
    std::size_t maxBatch_;
};

} // namespace serve
} // namespace mflstm

#endif // MFLSTM_SERVE_BATCHER_HH
