/**
 * @file
 * Fault injection for the serving layer (DESIGN.md §10): a FaultInjector
 * decides, per site, whether to inject a transient failure. The engine
 * consults it at two sites — the batched timing run (threaded through
 * NetworkExecutor's pre-run hook, so the fault surfaces on the real
 * execution path) and each request's functional run — and retries with
 * exponential backoff up to its retry budget. A successful retry re-runs
 * the untouched functional dataflow, so its outputs are bit-identical
 * to a fault-free run; an exhausted budget resolves the request with
 * Status::Failed without stalling its batch siblings.
 *
 * Two implementations: ProbabilisticFaultInjector (seeded coin flip,
 * for stress/soak runs) and ScriptedFaultInjector (fail chosen
 * requests/batches for their first N attempts, for deterministic
 * tests). Both are thread-safe; the engine calls shouldFail from every
 * worker.
 */

#ifndef MFLSTM_SERVE_FAULT_HH
#define MFLSTM_SERVE_FAULT_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <stdexcept>
#include <string>

#include "serve/request.hh"

namespace mflstm {
namespace serve {

/** Where in the serving pipeline a fault decision is being made. */
struct FaultSite
{
    enum class Kind : std::uint8_t
    {
        /// the batched timing run (NetworkExecutor::run)
        BatchRun = 0,
        /// one request's functional run inside a batch
        RequestRun,
    };

    Kind kind = Kind::RequestRun;
    /// engine-wide batch ordinal (both kinds)
    std::uint64_t batchOrdinal = 0;
    /// the request being served (RequestRun only)
    RequestId requestId = 0;
    /// 0-based attempt; attempts > 0 are retries
    int attempt = 0;
};

/** Thrown on the executor path to model a transient device fault. */
class TransientFault : public std::runtime_error
{
  public:
    explicit TransientFault(const std::string &what)
        : std::runtime_error(what)
    {}
};

class FaultInjector
{
  public:
    virtual ~FaultInjector() = default;

    /**
     * @return true to inject a transient failure at @p site. Called
     * from every engine worker — implementations must be thread-safe.
     */
    virtual bool shouldFail(const FaultSite &site) = 0;
};

/**
 * Seeded coin flip per site, with an optional cap on total injections
 * so a soak run is guaranteed to drain.
 */
class ProbabilisticFaultInjector : public FaultInjector
{
  public:
    explicit ProbabilisticFaultInjector(
        double rate, std::uint64_t seed = 1,
        std::uint64_t max_faults = UINT64_MAX);

    bool shouldFail(const FaultSite &site) override;

    /** Faults injected so far (monotonic). */
    std::uint64_t injected() const
    {
        return injected_.load(std::memory_order_relaxed);
    }

  private:
    double rate_;
    std::uint64_t maxFaults_;
    std::atomic<std::uint64_t> injected_{0};
    std::mutex mu_;
    std::mt19937_64 rng_;
};

/**
 * Deterministic script: chosen requests / batches fail their first N
 * attempts, then succeed. Records every attempt it was asked about so
 * tests can assert the retry bound was honoured.
 */
class ScriptedFaultInjector : public FaultInjector
{
  public:
    /** Fail @p id's first @p attempts functional attempts. */
    void failRequest(RequestId id, int attempts);
    /** Fail batch @p ordinal's first @p attempts timing attempts. */
    void failBatch(std::uint64_t ordinal, int attempts);

    bool shouldFail(const FaultSite &site) override;

    /** Highest attempt index observed for @p id, plus one (0 = never). */
    int attemptsSeen(RequestId id) const;
    /** Total faults injected across both site kinds. */
    std::uint64_t injected() const;

  private:
    mutable std::mutex mu_;
    std::map<RequestId, int> requestScript_;
    std::map<std::uint64_t, int> batchScript_;
    std::map<RequestId, int> seen_;
    std::uint64_t injected_ = 0;
};

} // namespace serve
} // namespace mflstm

#endif // MFLSTM_SERVE_FAULT_HH
