#include "serve/governor.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mflstm {
namespace serve {

AdaptiveThresholdGovernor::AdaptiveThresholdGovernor(const Config &cfg,
                                                     obs::Observer *obs)
    : cfg_(cfg), obs_(obs),
      // Allow an immediate first escalation once pressure appears.
      ticksSinceTransition_(cfg.dwellTicks)
{
    if (cfg_.rungCount == 0)
        throw std::invalid_argument(
            "AdaptiveThresholdGovernor: rungCount == 0");
    if (cfg_.lowQueuePerWorker >= cfg_.highQueuePerWorker)
        throw std::invalid_argument(
            "AdaptiveThresholdGovernor: hysteresis band inverted "
            "(lowQueuePerWorker must be < highQueuePerWorker)");
    if (obs_)
        obs_->metrics().gauge("serve.governor.rung").set(0.0);
}

void
AdaptiveThresholdGovernor::observe(std::size_t queue_depth,
                                   std::size_t workers, double p95_ms)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++ticksSinceTransition_;

    const double per_worker =
        static_cast<double>(queue_depth) /
        static_cast<double>(std::max<std::size_t>(workers, 1));
    const bool pressure =
        per_worker >= cfg_.highQueuePerWorker ||
        (cfg_.targetP95Ms > 0.0 && p95_ms > cfg_.targetP95Ms);
    const bool calm = per_worker <= cfg_.lowQueuePerWorker;

    const std::size_t cur = rung_.load(std::memory_order_relaxed);
    const std::size_t floor =
        rungFloor_.load(std::memory_order_relaxed);

    // Below the floor: converge one rung per tick, bypassing dwell —
    // the fleet needs the redistribution to land promptly, but the
    // ladder must still never skip a rung.
    if (cur < floor) {
        rung_.store(cur + 1, std::memory_order_release);
        ticksSinceTransition_ = 0;
        ++stats_.stepsUp;
        recordTransition(true, cur + 1);
        return;
    }

    if (ticksSinceTransition_ < cfg_.dwellTicks)
        return;

    if (pressure && cur + 1 < cfg_.rungCount) {
        rung_.store(cur + 1, std::memory_order_release);
        ticksSinceTransition_ = 0;
        ++stats_.stepsUp;
        recordTransition(true, cur + 1);
    } else if (calm && !pressure && cur > floor) {
        rung_.store(cur - 1, std::memory_order_release);
        ticksSinceTransition_ = 0;
        ++stats_.stepsDown;
        recordTransition(false, cur - 1);
    }
}

void
AdaptiveThresholdGovernor::setRungFloor(std::size_t rung)
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t floor = std::min(rung, cfg_.rungCount - 1);
    rungFloor_.store(floor, std::memory_order_release);

    // Take the first convergence step immediately so a floor raised
    // between batches is not invisible until traffic arrives.
    const std::size_t cur = rung_.load(std::memory_order_relaxed);
    if (cur < floor) {
        rung_.store(cur + 1, std::memory_order_release);
        ticksSinceTransition_ = 0;
        ++stats_.stepsUp;
        recordTransition(true, cur + 1);
    }
}

AdaptiveThresholdGovernor::Stats
AdaptiveThresholdGovernor::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
AdaptiveThresholdGovernor::recordTransition(bool up, std::size_t to_rung)
{
    if (!obs_)
        return;
    obs::MetricsRegistry &m = obs_->metrics();
    m.counter(up ? "serve.governor.steps_up"
                 : "serve.governor.steps_down")
        .add();
    m.gauge("serve.governor.rung").set(static_cast<double>(to_rung));

    obs::TraceSpan span;
    span.name = std::string(up ? "governor:up:" : "governor:down:") +
                std::to_string(to_rung);
    span.category = "governor";
    span.pid = obs::SpanTracer::kHostPid;
    span.tid = 0;
    span.startUs = obs_->wallNowUs();
    span.durUs = 0.0;
    obs_->tracer().record(std::move(span));
}

} // namespace serve
} // namespace mflstm
