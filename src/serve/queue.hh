/**
 * @file
 * Thread-safe request queue: producers (client threads calling
 * InferenceEngine::submit) push, consumers (the batcher on behalf of
 * worker threads) pop. Ordering is priority-descending with FIFO ties,
 * implemented as a binary heap under one mutex.
 *
 * The queue is optionally bounded (DESIGN.md §10). When full, the
 * configured admission policy decides what happens to a new push:
 * reject it, evict the oldest queued item to make room, or block the
 * producer until space frees up or a timeout expires. The queue never
 * completes promises itself — items it bounces or evicts are handed
 * back to the caller, which owns the terminal-status bookkeeping, so
 * no future is ever resolved twice or leaked.
 *
 * close() wakes every blocked consumer and producer; items still
 * queued at close keep draining, so shutdown completes submitted work
 * instead of dropping it.
 */

#ifndef MFLSTM_SERVE_QUEUE_HH
#define MFLSTM_SERVE_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "serve/request.hh"

namespace mflstm {
namespace serve {

/** What a full bounded queue does with a new push. */
enum class AdmissionPolicy : std::uint8_t
{
    /// bounce the new item back to the caller
    RejectNew = 0,
    /// evict the globally oldest queued item (minimum seq) to make room
    DropOldest,
    /// block the producer until space or QueueOptions::blockTimeoutMs
    BlockWithTimeout,
};

const char *toString(AdmissionPolicy p);

struct QueueOptions
{
    /// maximum queued items; 0 = unbounded (legacy behaviour)
    std::size_t capacity = 0;
    AdmissionPolicy policy = AdmissionPolicy::RejectNew;
    /// producer wait bound for BlockWithTimeout, wall milliseconds
    double blockTimeoutMs = 5.0;
};

class RequestQueue
{
  public:
    enum class PushOutcome : std::uint8_t
    {
        Admitted = 0,
        /// capacity refused the item (or the block timed out); the item
        /// is handed back through the bounced vector
        RejectedCapacity,
        /// the queue is closed; the item is handed back
        Closed,
    };

    /** Backpressure statistics (monotonic; snapshot under the lock). */
    struct Counters
    {
        std::uint64_t admitted = 0;
        /// pushes bounced by RejectNew or a BlockWithTimeout timeout
        std::uint64_t rejected = 0;
        /// queued items evicted by DropOldest admissions
        std::uint64_t evicted = 0;
        /// queued items removed by shedExpired()
        std::uint64_t shed = 0;
        /// deepest queue depth ever observed
        std::size_t highWater = 0;
    };

    RequestQueue() = default;
    explicit RequestQueue(const QueueOptions &opt) : opt_(opt) {}

    /**
     * Enqueue one item and wake a consumer. On RejectedCapacity or
     * Closed the item itself is appended to @p bounced; a DropOldest
     * admission appends the evicted victim instead. The caller must
     * complete every bounced promise with a terminal status.
     */
    PushOutcome push(QueuedRequest item,
                     std::vector<QueuedRequest> *bounced = nullptr);

    /**
     * Block until an item is available or the queue is closed and
     * drained. Pops the highest-priority (then oldest) item.
     * @return false only on closed-and-empty.
     */
    bool popWait(QueuedRequest &out);

    /**
     * Non-blocking: pop up to @p max items in queue order into @p out
     * (appended). @return the number popped.
     */
    std::size_t drain(std::vector<QueuedRequest> &out, std::size_t max);

    /**
     * Remove every queued item whose deadline already passed at @p now
     * into @p out (appended), without spending batch slots on them.
     * @return the number shed.
     */
    std::size_t shedExpired(std::chrono::steady_clock::time_point now,
                            std::vector<QueuedRequest> &out);

    /** Stop accepting pushes and wake all blocked consumers/producers. */
    void close();

    bool closed() const;
    std::size_t size() const;
    std::size_t capacity() const { return opt_.capacity; }
    const QueueOptions &options() const { return opt_; }
    Counters counters() const;

  private:
    bool fullLocked() const
    {
        return opt_.capacity > 0 && heap_.size() >= opt_.capacity;
    }
    void admitLocked(QueuedRequest item);

    QueueOptions opt_{};
    mutable std::mutex mu_;
    std::condition_variable cv_;       ///< consumers: items available
    std::condition_variable spaceCv_;  ///< producers: space available
    std::vector<QueuedRequest> heap_;
    Counters counters_;
    bool closed_ = false;
};

} // namespace serve
} // namespace mflstm

#endif // MFLSTM_SERVE_QUEUE_HH
