/**
 * @file
 * Thread-safe request queue: producers (client threads calling
 * InferenceEngine::submit) push, consumers (the batcher on behalf of
 * worker threads) pop. Ordering is priority-descending with FIFO ties,
 * implemented as a binary heap under one mutex.
 *
 * close() wakes every blocked consumer; items still queued at close
 * keep draining, so shutdown completes submitted work instead of
 * dropping it.
 */

#ifndef MFLSTM_SERVE_QUEUE_HH
#define MFLSTM_SERVE_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "serve/request.hh"

namespace mflstm {
namespace serve {

class RequestQueue
{
  public:
    /**
     * Enqueue one item and wake a consumer.
     * @return false (item untouched) when the queue is closed.
     */
    bool push(QueuedRequest item);

    /**
     * Block until an item is available or the queue is closed and
     * drained. Pops the highest-priority (then oldest) item.
     * @return false only on closed-and-empty.
     */
    bool popWait(QueuedRequest &out);

    /**
     * Non-blocking: pop up to @p max items in queue order into @p out
     * (appended). @return the number popped.
     */
    std::size_t drain(std::vector<QueuedRequest> &out, std::size_t max);

    /** Stop accepting pushes and wake all blocked consumers. */
    void close();

    bool closed() const;
    std::size_t size() const;

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::vector<QueuedRequest> heap_;
    bool closed_ = false;
};

} // namespace serve
} // namespace mflstm

#endif // MFLSTM_SERVE_QUEUE_HH
