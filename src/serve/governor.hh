/**
 * @file
 * Adaptive threshold governor (DESIGN.md §10): walks the engine's
 * active ThresholdSet along a configured AO→BPA ladder (the paper's
 * Sec. V / Table II operating points) as load changes. Under pressure
 * — deep queue per worker, or p95 latency over target — it steps one
 * rung toward BPA so batches serve faster at a small accuracy cost;
 * when the queue drains it steps back toward AO.
 *
 * Hysteresis comes from two mechanisms: the escalate threshold is
 * strictly above the relax threshold (a depth band where the rung
 * holds), and at least Config::dwellTicks observations must pass
 * between transitions — so an AO↔BPA flap cannot happen on consecutive
 * batches. Every transition is counted in the metrics registry
 * (serve.governor.steps_up / steps_down, serve.governor.rung gauge)
 * and traced as a zero-length host span.
 *
 * Thread safety: rung() is an atomic read on the worker hot path;
 * observe() serialises on a mutex (one call per completed batch).
 */

#ifndef MFLSTM_SERVE_GOVERNOR_HH
#define MFLSTM_SERVE_GOVERNOR_HH

#include <atomic>
#include <cstdint>
#include <mutex>

#include "obs/observer.hh"

namespace mflstm {
namespace serve {

class AdaptiveThresholdGovernor
{
  public:
    struct Config
    {
        /// ladder rungs available (rung 0 = most accurate / AO end)
        std::size_t rungCount = 1;
        /// step toward BPA when queued requests per worker exceed this
        double highQueuePerWorker = 16.0;
        /// step toward AO when queued requests per worker fall below
        /// this; must be < highQueuePerWorker for the hysteresis band
        double lowQueuePerWorker = 2.0;
        /// escalate when p95 wall latency exceeds this (ms); 0 disables
        /// the latency signal (the cumulative histogram never forgets,
        /// so relaxation is always queue-depth-driven)
        double targetP95Ms = 0.0;
        /// minimum observe() calls between two transitions
        std::uint64_t dwellTicks = 8;
    };

    struct Stats
    {
        std::uint64_t stepsUp = 0;    ///< transitions toward BPA
        std::uint64_t stepsDown = 0;  ///< transitions toward AO
    };

    /**
     * @param obs optional sink for transition counters/trace spans.
     * @throws std::invalid_argument on rungCount == 0 or an inverted
     *         hysteresis band.
     */
    explicit AdaptiveThresholdGovernor(const Config &cfg,
                                       obs::Observer *obs = nullptr);

    /** The rung workers should serve the next batch at (atomic). */
    std::size_t rung() const
    {
        return rung_.load(std::memory_order_acquire);
    }

    std::size_t rungCount() const { return cfg_.rungCount; }
    const Config &config() const { return cfg_; }

    /**
     * One control tick, called by a worker after each batch completes.
     * @param queue_depth current queued requests
     * @param workers     engine worker count (>= 1)
     * @param p95_ms      cumulative p95 wall latency, ms (0 = unknown)
     */
    void observe(std::size_t queue_depth, std::size_t workers,
                 double p95_ms);

    /**
     * Fleet overload redistribution (DESIGN.md §16): forbid serving
     * below @p rung. The governor converges toward the floor one rung
     * per call — here and on every observe() tick, bypassing dwell —
     * so the ladder still never skips a rung; relaxation below the
     * floor waits until the floor is lowered. Clamped to rungCount-1.
     */
    void setRungFloor(std::size_t rung);
    std::size_t rungFloor() const
    {
        return rungFloor_.load(std::memory_order_acquire);
    }

    Stats stats() const;

  private:
    void recordTransition(bool up, std::size_t to_rung);

    Config cfg_;
    obs::Observer *obs_;
    std::atomic<std::size_t> rung_{0};
    std::atomic<std::size_t> rungFloor_{0};
    mutable std::mutex mu_;
    std::uint64_t ticksSinceTransition_;
    Stats stats_;
};

} // namespace serve
} // namespace mflstm

#endif // MFLSTM_SERVE_GOVERNOR_HH
