/**
 * @file
 * Engine warm-restart persistence on the crash-safe artifact layer
 * (DESIGN.md §11). An InferenceEngine's expensive construction work —
 * one execution plan per governor-ladder rung, each built by replaying
 * the planning sequences — is captured as an EngineWarmState and stored
 * as a checksummed container. A restarted process loads the state,
 * validates the fingerprint (model weights CRC, timing shape, plan
 * options) and hands it to the warm InferenceEngine constructor, which
 * then serves bit-identically to the engine that saved it.
 */

#ifndef MFLSTM_SERVE_PERSIST_HH
#define MFLSTM_SERVE_PERSIST_HH

#include <string>

#include "io/artifact.hh"
#include "serve/engine.hh"

namespace mflstm {
namespace serve {

/** Atomically write @p engine's warm state to @p path. */
void saveEngineState(const InferenceEngine &engine,
                     const std::string &path);

/** Atomically write an already exported state to @p path. */
void saveEngineState(const EngineWarmState &state,
                     const std::string &path);

/**
 * Load a warm state. Structural validation only — the model/shape
 * fingerprint is checked by the warm InferenceEngine constructor,
 * which is the first point where the live model is available.
 * @throws io::ArtifactError on any defect; when @p obs is non-null a
 * rejection bumps artifact_load_rejected_total first.
 */
EngineWarmState loadEngineState(const std::string &path,
                                const io::ArtifactLimits &limits = {},
                                obs::Observer *obs = nullptr);

/**
 * Deep verification for `mflstm fsck`: parse every chunk and check
 * internal consistency. @throws io::ArtifactError on any defect.
 */
void verifyEngineStateFile(const std::string &path,
                           const io::ArtifactLimits &limits = {});

} // namespace serve
} // namespace mflstm

#endif // MFLSTM_SERVE_PERSIST_HH
