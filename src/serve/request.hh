/**
 * @file
 * Value types of the serving layer (DESIGN.md §9): what a client
 * submits (Request), what the engine returns (Response), and the
 * queue-internal envelope that carries a request from submit() to the
 * worker that completes it (QueuedRequest).
 */

#ifndef MFLSTM_SERVE_REQUEST_HH
#define MFLSTM_SERVE_REQUEST_HH

#include <chrono>
#include <cstdint>
#include <future>
#include <vector>

#include "tensor/matrix.hh"

namespace mflstm {
namespace serve {

using RequestId = std::uint64_t;

/** One inference job: a token sequence plus scheduling hints. */
struct Request
{
    std::vector<std::int32_t> tokens;
    /// higher priority drains first; ties are FIFO
    int priority = 0;
    /// wall-clock deadline in ms from submit; 0 disables the check
    double deadlineMs = 0.0;
};

/** What the engine hands back for one Request. */
struct Response
{
    RequestId id = 0;

    /// classification logits (TaskKind::Classification models)
    tensor::Vector logits;
    /// per-step next-token logits (TaskKind::LanguageModel models)
    std::vector<tensor::Vector> stepLogits;

    /// sequences packed into the batch this request rode in
    std::size_t batch = 0;
    /// wall ms spent queued before the batch started
    double queueMs = 0.0;
    /// wall ms from submit to completion
    double latencyMs = 0.0;
    /// latencyMs <= Request::deadlineMs (true when no deadline was set)
    bool deadlineMet = true;

    /// simulated GPU time of the whole batched run, ms
    double simBatchMs = 0.0;
    /// simulated weight-matrix DRAM bytes amortised over the batch
    double weightDramBytesPerSeq = 0.0;
};

/** Queue envelope: a Request plus everything the worker needs. */
struct QueuedRequest
{
    Request request;
    RequestId id = 0;
    /// admission order, the FIFO tiebreak within a priority level
    std::uint64_t seq = 0;
    std::chrono::steady_clock::time_point enqueued{};
    std::promise<Response> promise;
};

} // namespace serve
} // namespace mflstm

#endif // MFLSTM_SERVE_REQUEST_HH
