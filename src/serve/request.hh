/**
 * @file
 * Value types of the serving layer (DESIGN.md §9-§10): what a client
 * submits (Request), what the engine returns (Response, carrying a
 * terminal Status), and the queue-internal envelope that carries a
 * request from submit() to the worker that completes it
 * (QueuedRequest).
 */

#ifndef MFLSTM_SERVE_REQUEST_HH
#define MFLSTM_SERVE_REQUEST_HH

#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "tensor/matrix.hh"

namespace mflstm {
namespace serve {

using RequestId = std::uint64_t;

/**
 * Terminal outcome of one request. Every future the engine hands out
 * resolves with exactly one of these (DESIGN.md §10 status table) —
 * there is no silent success-only path and no leaked promise.
 */
enum class Status : std::uint8_t
{
    /// executed and completed within the deadline (or none was set)
    Ok = 0,
    /**
     * Deadline expired: either shed from the queue / batch before
     * execution (no outputs), or executed but completed late (outputs
     * populated; check executed). Both count as deadline misses.
     */
    ShedDeadline,
    /// turned away by admission control (queue full), or evicted from
    /// a full queue by a newer request under DropOldest
    RejectedCapacity,
    /// execution failed after the retry budget was exhausted
    Failed,
};

const char *toString(Status s);

/** One inference job: a token sequence plus scheduling hints. */
struct Request
{
    std::vector<std::int32_t> tokens;
    /// higher priority drains first; ties are FIFO
    int priority = 0;
    /// wall-clock deadline in ms from submit; 0 disables the check
    double deadlineMs = 0.0;
};

/** What the engine hands back for one Request. */
struct Response
{
    RequestId id = 0;

    /// terminal outcome; the functional fields below are only
    /// meaningful when executed is true
    Status status = Status::Ok;
    /// the functional run actually happened (logits are populated)
    bool executed = false;
    /// human-readable cause for Status::Failed
    std::string error;

    /// classification logits (TaskKind::Classification models)
    tensor::Vector logits;
    /// per-step next-token logits (TaskKind::LanguageModel models)
    std::vector<tensor::Vector> stepLogits;

    /// sequences packed into the batch this request rode in
    std::size_t batch = 0;
    /// governor ladder rung active for the batch (0 without a governor)
    std::size_t rung = 0;
    /// transient-fault retries this request consumed
    int retries = 0;
    /// wall ms spent queued before the batch started
    double queueMs = 0.0;
    /// wall ms from batch start until this request's own functional
    /// run began (the shared batched timing run + earlier siblings)
    double batchWaitMs = 0.0;
    /// wall ms of this request's own functional run (incl. retries)
    double execMs = 0.0;
    /// wall ms from submit to completion
    double latencyMs = 0.0;

    /// simulated GPU time of the whole batched run, ms
    double simBatchMs = 0.0;
    /// simulated weight-matrix DRAM bytes amortised over the batch
    double weightDramBytesPerSeq = 0.0;

    /**
     * Derived from the status (the §10 unification): a request met its
     * deadline unless it resolved ShedDeadline. Rejected and failed
     * requests never reached the deadline check.
     */
    bool deadlineMet() const { return status != Status::ShedDeadline; }
};

/** Queue envelope: a Request plus everything the worker needs. */
struct QueuedRequest
{
    Request request;
    RequestId id = 0;
    /// admission order, the FIFO tiebreak within a priority level
    std::uint64_t seq = 0;
    std::chrono::steady_clock::time_point enqueued{};
    std::promise<Response> promise;

    /** The deadline has already passed at @p now (never true without one). */
    bool expired(std::chrono::steady_clock::time_point now) const
    {
        if (request.deadlineMs <= 0.0)
            return false;
        return std::chrono::duration<double, std::milli>(now - enqueued)
                   .count() > request.deadlineMs;
    }
};

} // namespace serve
} // namespace mflstm

#endif // MFLSTM_SERVE_REQUEST_HH
