#include "serve/engine.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "core/persist.hh"
#include "sched/persist.hh"
#include "serve/persist.hh"

namespace mflstm {
namespace serve {

namespace {

std::vector<double>
batchSizeEdges(std::size_t max_batch)
{
    std::vector<double> edges;
    edges.reserve(max_batch);
    for (std::size_t b = 1; b <= max_batch; ++b)
        edges.push_back(static_cast<double>(b));
    return edges;
}

double
wallMsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Shared edges for every serve-side millisecond histogram. */
std::vector<double>
serveMsEdges()
{
    return obs::Histogram::exponentialEdges(1e-3, 1e5, 33);
}

/**
 * Emit one request's lifecycle spans (queue → batch-wait → exec →
 * complete) on the serve process track, laid out backwards from the
 * completion instant so the three stages abut. Zero-duration stages
 * (a shed request never executed) are skipped; the zero-length
 * "complete" marker always lands and carries the terminal status.
 */
void
recordLifecycle(obs::Observer *obs, int track, const Response &r)
{
    obs::SpanTracer &tracer = obs->tracer();
    const double end_us = obs->wallNowUs();
    const std::vector<std::pair<const char *, double>> stages = {
        {"queue", r.queueMs * 1e3},
        {"batch-wait", r.batchWaitMs * 1e3},
        {"exec", r.execMs * 1e3},
    };
    double cursor = end_us;
    for (const auto &s : stages)
        cursor -= s.second;
    for (const auto &s : stages) {
        if (s.second <= 0.0) {
            cursor += s.second;
            continue;
        }
        obs::TraceSpan span;
        span.name = s.first;
        span.category = "request";
        span.pid = obs::SpanTracer::kServePid;
        span.tid = track;
        span.startUs = cursor;
        span.durUs = s.second;
        span.numArgs = {
            {"id", static_cast<double>(r.id)},
            {"batch", static_cast<double>(r.batch)},
            {"rung", static_cast<double>(r.rung)},
            {"retries", static_cast<double>(r.retries)},
        };
        span.strArgs = {{"status", toString(r.status)}};
        tracer.record(std::move(span));
        cursor += s.second;
    }
    obs::TraceSpan done;
    done.name = "complete";
    done.category = "request";
    done.pid = obs::SpanTracer::kServePid;
    done.tid = track;
    done.startUs = end_us;
    done.durUs = 0.0;
    done.numArgs = {{"id", static_cast<double>(r.id)},
                    {"retries", static_cast<double>(r.retries)}};
    done.strArgs = {{"status", toString(r.status)}};
    tracer.record(std::move(done));
}

/**
 * The fault site the executor's pre-run hook consults. The worker
 * stamps it immediately before each executor_->run call, so the
 * injection decision happens on the real execution path without the
 * runtime layer depending on serve types.
 */
thread_local FaultSite t_batchSite;

} // anonymous namespace

InferenceEngine::InferenceEngine(const core::MemoryFriendlyLstm &mf,
                                 const Options &opts)
    : opts_(opts), shape_(mf.config().timingShape),
      task_(mf.runner().model().config().task),
      queue_(QueueOptions{opts.queueCapacity, opts.admission,
                          opts.admitTimeoutMs}),
      batcher_(queue_, opts.maxBatch)
{
    if (opts_.workers == 0)
        throw std::invalid_argument("InferenceEngine: workers == 0");
    if (opts_.maxRetries < 0)
        throw std::invalid_argument("InferenceEngine: maxRetries < 0");

    initObserver();

    core::TimingOptions topt;
    topt.kind = opts_.plan;
    topt.pruneFraction = opts_.pruneFraction;
    topt.observer = obs_;

    // Rung snapshots: plan + base runner per threshold set. Without a
    // ladder the single rung mirrors the facade's active state,
    // planned exactly as the facade would plan it.
    std::vector<core::ApproxRunner> base_runners;
    if (opts_.governorLadder.empty()) {
        ladder_ = {mf.thresholds()};
        plans_.push_back(mf.evaluateTiming(topt).plan);
        base_runners.push_back(mf.runner());
    } else {
        for (const core::ThresholdSet &set : opts_.governorLadder) {
            core::MemoryFriendlyLstm::RungSnapshot snap =
                mf.snapshotRung(set, opts_.planningSequences, topt);
            ladder_.push_back(set);
            plans_.push_back(std::move(snap.plan));
            base_runners.push_back(std::move(snap.runner));
        }
    }

    // Tuned serving (§14): replace each rung's preset plan with the
    // searched one for that rung's statistics and precision. The tuner's
    // dominance gate guarantees the swap never regresses simulated time
    // or DRAM bytes against the preset the rung would otherwise serve.
    if (opts_.tunePlans) {
        if (!mf.runner().calibrated())
            throw std::logic_error(
                "InferenceEngine: Options::tunePlans needs a calibrated "
                "facade (run calibrate() first)");
        const std::uint32_t weights_crc =
            core::modelWeightsCrc(mf.runner().model());
        if (!opts_.tuneCacheDir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(opts_.tuneCacheDir, ec);
        }
        for (std::size_t r = 0; r < ladder_.size(); ++r) {
            sched::TuneRequest treq;
            treq.shape = shape_;
            treq.stats = base_runners[r].stats();
            treq.mts = mf.calibration().mts;
            treq.modelHidden = mf.runner().model().config().hiddenSize;
            treq.quant = ladder_[r].quant;
            treq.pruneFraction = opts_.pruneFraction;
            treq.batch = opts_.maxBatch;
            treq.backendId = opts_.backendId;
            const sched::TuneResult tuned =
                opts_.tuneCacheDir.empty()
                    ? sched::tune(mf.executor(), treq)
                    : sched::tuneCached(
                          mf.executor(), treq, weights_crc,
                          opts_.tuneCacheDir + "/tuned_plan_rung" +
                              std::to_string(r),
                          {}, obs_);
            plans_[r] = tuned.chosen.plan;
        }
    }

    finishInit(mf, std::move(base_runners));
}

InferenceEngine::InferenceEngine(const core::MemoryFriendlyLstm &mf,
                                 const Options &opts,
                                 const EngineWarmState &warm)
    : opts_(opts), shape_(mf.config().timingShape),
      task_(mf.runner().model().config().task),
      queue_(QueueOptions{opts.queueCapacity, opts.admission,
                          opts.admitTimeoutMs}),
      batcher_(queue_, opts.maxBatch)
{
    using io::ArtifactError;
    using io::ErrorKind;

    if (opts_.workers == 0)
        throw std::invalid_argument("InferenceEngine: workers == 0");
    if (opts_.maxRetries < 0)
        throw std::invalid_argument("InferenceEngine: maxRetries < 0");

    initObserver();

    if (warm.ladder.empty() || warm.ladder.size() != warm.plans.size())
        throw ArtifactError(
            ErrorKind::Malformed,
            "InferenceEngine: warm state ladder/plan mismatch");
    if (warm.modelWeightsCrc !=
        core::modelWeightsCrc(mf.runner().model()))
        throw ArtifactError(
            ErrorKind::Stale,
            "InferenceEngine: warm state was saved from a different "
            "model (weights CRC mismatch)");
    if (!(warm.shape == shape_))
        throw ArtifactError(
            ErrorKind::Stale,
            "InferenceEngine: warm state was saved for a different "
            "timing shape");
    if (warm.plan != opts_.plan ||
        warm.pruneFraction != opts_.pruneFraction)
        throw ArtifactError(
            ErrorKind::Stale,
            "InferenceEngine: warm state was saved under different "
            "plan options");
    if (warm.tunedPlans != opts_.tunePlans)
        throw ArtifactError(
            ErrorKind::Stale,
            "InferenceEngine: warm state tuning mode does not match "
            "Options::tunePlans");
    // Pre-v5 states recorded no backend; those load under any backend
    // (the weights CRC and shape checks above still guard them).
    if (!warm.backendId.empty() && warm.backendId != opts_.backendId)
        throw ArtifactError(
            ErrorKind::Stale,
            "InferenceEngine: warm state was saved under backend '" +
                warm.backendId + "' but this engine runs '" +
                opts_.backendId + "'");
    if (!opts_.governorLadder.empty() &&
        !(warm.ladder == opts_.governorLadder))
        throw ArtifactError(
            ErrorKind::Stale,
            "InferenceEngine: warm state ladder does not match "
            "Options::governorLadder");

    const bool needs_calibration = std::any_of(
        warm.ladder.begin(), warm.ladder.end(),
        [](const core::ThresholdSet &s) { return s.alphaInter > 0.0; });
    if (needs_calibration && !mf.runner().calibrated())
        throw std::logic_error(
            "InferenceEngine: warm state uses layer division but the "
            "facade is not calibrated (restore the calibration first)");

    // The whole point of the warm path: adopt the persisted plans and
    // configure runners directly instead of replaying the planning
    // sequences through snapshotRung.
    ladder_ = warm.ladder;
    plans_ = warm.plans;
    std::vector<core::ApproxRunner> base_runners;
    base_runners.reserve(ladder_.size());
    for (const core::ThresholdSet &set : ladder_) {
        core::ApproxRunner runner = mf.runner();
        runner.setThresholds(set.alphaInter, set.alphaIntra);
        base_runners.push_back(std::move(runner));
    }

    finishInit(mf, std::move(base_runners));
}

void
InferenceEngine::initObserver()
{
    if (opts_.observer) {
        obs_ = opts_.observer;
    } else {
        ownedObs_ = std::make_unique<obs::Observer>();
        obs_ = ownedObs_.get();
    }
}

void
InferenceEngine::finishInit(const core::MemoryFriendlyLstm &mf,
                            std::vector<core::ApproxRunner> base_runners)
{
    if (ladder_.size() > 1) {
        AdaptiveThresholdGovernor::Config gcfg = opts_.governor;
        gcfg.rungCount = ladder_.size();
        governor_ =
            std::make_unique<AdaptiveThresholdGovernor>(gcfg, obs_);
    }

    executor_ = std::make_unique<runtime::NetworkExecutor>(
        mf.config().gpu, obs_);
    if (opts_.faultInjector) {
        executor_->setPreRunHook([this](const runtime::RunRequest &) {
            if (opts_.faultInjector->shouldFail(t_batchSite)) {
                obs_->metrics().counter("serve.faults_injected").add();
                throw TransientFault(
                    "injected batch-timing fault (batch " +
                    std::to_string(t_batchSite.batchOrdinal) +
                    ", attempt " +
                    std::to_string(t_batchSite.attempt) + ")");
            }
        });
    }

    // Touch the instruments once so quantile queries work even before
    // the first request completes.
    obs_->metrics().histogram("serve.latency_ms", serveMsEdges());
    obs_->metrics().histogram("serve.queue_ms", serveMsEdges());
    obs_->metrics().histogram("serve.batch_wait_ms", serveMsEdges());
    obs_->metrics().histogram("serve.exec_ms", serveMsEdges());
    obs_->metrics().histogram("serve.batch_size",
                              batchSizeEdges(opts_.maxBatch));
    obs_->metrics().histogram("serve.twin_rebuild_ms", serveMsEdges());
    obs_->metrics().counter("serve.precision_switch_total");

    for (std::size_t w = 0; w < opts_.workers; ++w)
        obs_->tracer().setTrackName(obs::SpanTracer::kServePid,
                                    static_cast<int>(w),
                                    "worker " + std::to_string(w));
    obs_->tracer().setTrackName(obs::SpanTracer::kServePid,
                                static_cast<int>(opts_.workers),
                                "unserved");

    runners_.reserve(opts_.workers);
    for (std::size_t w = 0; w < opts_.workers; ++w)
        runners_.push_back(base_runners);  // private copies per worker
    lastServedQuant_.assign(opts_.workers, -1);

    workers_.reserve(opts_.workers);
    for (std::size_t w = 0; w < opts_.workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

InferenceEngine::~InferenceEngine()
{
    shutdown();
}

std::future<Response>
InferenceEngine::submit(Request req)
{
    if (req.tokens.empty())
        throw std::invalid_argument(
            "InferenceEngine::submit: empty token sequence");

    QueuedRequest item;
    item.request = std::move(req);
    item.id = nextId_.fetch_add(1, std::memory_order_relaxed);
    item.seq = nextSeq_.fetch_add(1, std::memory_order_relaxed);
    item.enqueued = std::chrono::steady_clock::now();
    std::future<Response> fut = item.promise.get_future();

    std::vector<QueuedRequest> bounced;
    const RequestQueue::PushOutcome outcome =
        queue_.push(std::move(item), &bounced);
    if (outcome == RequestQueue::PushOutcome::Closed)
        throw std::runtime_error(
            "InferenceEngine::submit: engine is shut down");

    submitted_.fetch_add(1, std::memory_order_relaxed);
    obs_->metrics().counter("serve.requests").add();

    // Admission control resolves every bounced promise right here with
    // a terminal status: the new item under RejectNew / a block
    // timeout, or the evicted victims under DropOldest.
    if (outcome == RequestQueue::PushOutcome::RejectedCapacity) {
        for (QueuedRequest &b : bounced)
            resolveUnserved(std::move(b), Status::RejectedCapacity);
    } else if (!bounced.empty()) {
        for (QueuedRequest &b : bounced) {
            evicted_.fetch_add(1, std::memory_order_relaxed);
            obs_->metrics().counter("serve.evicted").add();
            resolveUnserved(std::move(b), Status::RejectedCapacity);
        }
    }
    return fut;
}

Session
InferenceEngine::session(int priority)
{
    return Session(*this, priority);
}

void
InferenceEngine::shutdown()
{
    queue_.close();
    std::lock_guard<std::mutex> lock(shutdownMu_);
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
}

void
InferenceEngine::kill()
{
    killed_.store(true, std::memory_order_release);
    obs_->metrics().counter("serve.killed").add();
    shutdown();
}

void
InferenceEngine::setBrownoutMs(double ms)
{
    brownoutMs_.store(std::max(ms, 0.0), std::memory_order_relaxed);
    obs_->metrics().gauge("serve.brownout_ms").set(std::max(ms, 0.0));
}

void
InferenceEngine::setGovernorRungFloor(std::size_t rung)
{
    if (!governor_)
        return;
    governor_->setRungFloor(std::min(rung, ladder_.size() - 1));
}

EngineWarmState
InferenceEngine::exportWarmState() const
{
    EngineWarmState s;
    s.plan = opts_.plan;
    s.pruneFraction = opts_.pruneFraction;
    s.shape = shape_;
    s.modelWeightsCrc =
        core::modelWeightsCrc(runners_.front().front().model());
    s.tunedPlans = opts_.tunePlans;
    s.backendId = opts_.backendId;
    s.ladder = ladder_;
    s.plans = plans_;
    return s;
}

void
InferenceEngine::drainAndSaveState(const std::string &path)
{
    shutdown();
    saveEngineState(*this, path);
}

InferenceEngine::Stats
InferenceEngine::stats() const
{
    Stats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.ok = ok_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.deadlineMisses = deadlineMisses_.load(std::memory_order_relaxed);
    s.shedBeforeRun = shedBeforeRun_.load(std::memory_order_relaxed);
    s.lateCompletions =
        lateCompletions_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.evicted = evicted_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.retries = retries_.load(std::memory_order_relaxed);
    s.workerRestarts = workerRestarts_.load(std::memory_order_relaxed);
    if (governor_) {
        const AdaptiveThresholdGovernor::Stats g = governor_->stats();
        s.governorStepsUp = g.stepsUp;
        s.governorStepsDown = g.stepsDown;
    }
    s.queueHighWater = queue_.counters().highWater;
    s.maxBatchObserved =
        maxBatchObserved_.load(std::memory_order_relaxed);
    const std::uint64_t seqs =
        batchSeqSum_.load(std::memory_order_relaxed);
    s.meanBatchSize = s.batches ? static_cast<double>(seqs) /
                                      static_cast<double>(s.batches)
                                : 0.0;
    return s;
}

double
InferenceEngine::latencyQuantileMs(double q) const
{
    const obs::Histogram *h =
        obs_->metrics().findHistogram("serve.latency_ms");
    return h ? h->quantile(q) : 0.0;
}

void
InferenceEngine::resolveUnserved(QueuedRequest item, Status status,
                                 const std::string &error)
{
    obs::MetricsRegistry &m = obs_->metrics();
    Response r;
    r.id = item.id;
    r.status = status;
    r.error = error;
    r.queueMs = r.latencyMs = wallMsSince(item.enqueued);
    switch (status) {
    case Status::ShedDeadline:
        shedBeforeRun_.fetch_add(1, std::memory_order_relaxed);
        deadlineMisses_.fetch_add(1, std::memory_order_relaxed);
        m.counter("serve.shed_deadline").add();
        m.counter("serve.deadline_misses").add();
        break;
    case Status::RejectedCapacity:
        rejected_.fetch_add(1, std::memory_order_relaxed);
        m.counter("serve.rejected_capacity").add();
        break;
    case Status::Failed:
        failed_.fetch_add(1, std::memory_order_relaxed);
        m.counter("serve.failed").add();
        break;
    case Status::Ok:
        break;  // unreachable: Ok always comes from serveBatch
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    m.counter("serve.responses").add();
    m.histogram("serve.queue_ms", serveMsEdges()).observe(r.queueMs);
    recordLifecycle(obs_, static_cast<int>(opts_.workers), r);
    item.promise.set_value(std::move(r));
}

std::vector<QueuedRequest>
InferenceEngine::shedExpired(std::vector<QueuedRequest> batch)
{
    const auto now = std::chrono::steady_clock::now();
    std::vector<QueuedRequest> live;
    live.reserve(batch.size());
    for (QueuedRequest &item : batch) {
        if (item.expired(now))
            resolveUnserved(std::move(item), Status::ShedDeadline);
        else
            live.push_back(std::move(item));
    }
    return live;
}

void
InferenceEngine::backoff(int attempt) const
{
    if (opts_.retryBackoffMs <= 0.0)
        return;
    const double ms =
        opts_.retryBackoffMs * static_cast<double>(1 << std::min(attempt, 10));
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(ms));
}

void
InferenceEngine::workerLoop(std::size_t worker_index)
{
    for (;;) {
        std::vector<QueuedRequest> batch = batcher_.nextBatch();
        if (batch.empty())
            return;  // closed and drained

        // Deadline shedding (§10): expired requests resolve
        // ShedDeadline before they waste a batch slot, and the freed
        // slots are refilled so the batch still amortises weights.
        std::vector<QueuedRequest> live = shedExpired(std::move(batch));
        while (live.size() < opts_.maxBatch) {
            std::vector<QueuedRequest> extra;
            if (queue_.drain(extra, opts_.maxBatch - live.size()) == 0)
                break;
            extra = shedExpired(std::move(extra));
            for (QueuedRequest &e : extra)
                live.push_back(std::move(e));
        }
        if (live.empty())
            continue;

        // A killed replica flushes instead of executing: the packed
        // batch resolves Failed so the fleet router can re-dispatch.
        if (killed_.load(std::memory_order_acquire)) {
            for (QueuedRequest &item : live)
                resolveUnserved(std::move(item), Status::Failed,
                                kEngineKilledError);
            continue;
        }

        try {
            serveBatch(live, worker_index);
        } catch (...) {
            // Graceful worker restart: an unexpected batch error never
            // kills the loop. serveBatch erases each item as its
            // promise resolves, so whatever is still in the batch here
            // is exactly the unresolved remainder — flush it Failed
            // instead of stranding the futures.
            workerRestarts_.fetch_add(1, std::memory_order_relaxed);
            obs_->metrics().counter("serve.worker_restarts").add();
            for (QueuedRequest &item : live)
                resolveUnserved(std::move(item), Status::Failed,
                                "batch aborted by an unexpected error");
        }
    }
}

void
InferenceEngine::serveBatch(std::vector<QueuedRequest> &batch,
                            std::size_t worker_index)
{
    const std::size_t b = batch.size();
    const std::size_t rung = governor_ ? governor_->rung() : 0;
    core::ApproxRunner &runner = runners_[worker_index][rung];
    const runtime::ExecutionPlan &plan = plans_[rung];

    // Governor precision switches are not free: crossing a quant
    // boundary re-pays this runner's twin rebuild (model copy +
    // fake-quant + relevance contexts) and the wall cost lands in
    // serve.twin_rebuild_ms so cross-backend serve comparisons see it.
    // Dropping to fp32 only discards the twin, which is why those
    // switches record near-zero.
    {
        const quant::QuantMode rq = runner.quantMode();
        const int prev = lastServedQuant_[worker_index];
        if (prev >= 0 && prev != static_cast<int>(rq)) {
            const auto t0 = std::chrono::steady_clock::now();
            runner.setQuantMode(quant::QuantMode::Fp32);
            runner.setQuantMode(rq);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            obs_->metrics()
                .counter("serve.precision_switch_total")
                .add();
            obs_->metrics()
                .histogram("serve.twin_rebuild_ms", serveMsEdges())
                .observe(ms);
        }
        lastServedQuant_[worker_index] = static_cast<int>(rq);
    }
    const std::uint64_t ordinal =
        batchOrdinal_.fetch_add(1, std::memory_order_relaxed);
    const auto batch_start = std::chrono::steady_clock::now();
    auto ph = obs::Observer::phase(obs_, "serve.batch");
    obs::MetricsRegistry &m = obs_->metrics();
    FaultInjector *inj = opts_.faultInjector;

    // Simulated brownout (fleet chaos): a degraded replica serves
    // every batch slower, which the health checks then observe.
    const double brownout =
        brownoutMs_.load(std::memory_order_relaxed);
    if (brownout > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(brownout));

    // Timing side: one batched lowering, weights charged once. A
    // transient fault on the executor path is retried with backoff;
    // an exhausted budget (or a non-transient error) fails the batch.
    runtime::RunReport report;
    bool timing_ok = false;
    std::string timing_err;
    for (int attempt = 0; attempt <= opts_.maxRetries; ++attempt) {
        try {
            t_batchSite = FaultSite{FaultSite::Kind::BatchRun, ordinal,
                                    0, attempt};
            report = executor_->run(
                runtime::RunRequest::network(shape_, plan, b));
            timing_ok = true;
            break;
        } catch (const TransientFault &e) {
            timing_err = e.what();
            if (attempt < opts_.maxRetries) {
                retries_.fetch_add(1, std::memory_order_relaxed);
                m.counter("serve.retries").add();
                backoff(attempt);
            }
        } catch (const std::exception &e) {
            timing_err = e.what();  // non-transient: no retry
            break;
        }
    }
    if (!timing_ok) {
        while (!batch.empty()) {
            QueuedRequest item = std::move(batch.front());
            batch.erase(batch.begin());
            Response r;
            r.id = item.id;
            r.status = Status::Failed;
            r.error = "batch timing run failed: " + timing_err;
            r.batch = b;
            r.rung = rung;
            r.queueMs = std::chrono::duration<double, std::milli>(
                            batch_start - item.enqueued)
                            .count();
            r.latencyMs = wallMsSince(item.enqueued);
            // The whole post-queue wait went to the failed timing run.
            r.batchWaitMs = std::max(0.0, r.latencyMs - r.queueMs);
            failed_.fetch_add(1, std::memory_order_relaxed);
            m.counter("serve.failed").add();
            completed_.fetch_add(1, std::memory_order_relaxed);
            m.counter("serve.responses").add();
            m.histogram("serve.queue_ms", serveMsEdges())
                .observe(r.queueMs);
            m.histogram("serve.batch_wait_ms", serveMsEdges())
                .observe(r.batchWaitMs);
            recordLifecycle(obs_, static_cast<int>(worker_index), r);
            item.promise.set_value(std::move(r));
        }
        return;
    }

    const double sim_ms = report.result.timeUs / 1e3;
    const double weight_per_seq = report.weightDramBytesPerSequence();

    batches_.fetch_add(1, std::memory_order_relaxed);
    batchSeqSum_.fetch_add(b, std::memory_order_relaxed);
    std::size_t seen = maxBatchObserved_.load(std::memory_order_relaxed);
    while (b > seen &&
           !maxBatchObserved_.compare_exchange_weak(
               seen, b, std::memory_order_relaxed))
        ;
    m.counter("serve.batches").add();
    m.histogram("serve.batch_size", batchSizeEdges(opts_.maxBatch))
        .observe(static_cast<double>(b));
    m.gauge("serve.weight_dram_bytes_per_seq").set(weight_per_seq);
    m.gauge("serve.rung").set(static_cast<double>(rung));

    // Functional side: per sequence, bit-identical to a solo run at
    // this rung's thresholds. Transient per-request faults retry with
    // backoff; exhausting the budget fails only that request. Items
    // leave the batch as their promises resolve so an exception never
    // strands an already-resolved (or still-pending) future.
    while (!batch.empty()) {
        QueuedRequest item = std::move(batch.front());
        batch.erase(batch.begin());
        // Deadlines can expire while earlier siblings run — shed
        // before spending functional compute.
        if (item.expired(std::chrono::steady_clock::now())) {
            resolveUnserved(std::move(item), Status::ShedDeadline);
            continue;
        }

        Response r;
        r.id = item.id;
        r.batch = b;
        r.rung = rung;
        r.simBatchMs = sim_ms;
        r.weightDramBytesPerSeq = weight_per_seq;
        r.queueMs = std::chrono::duration<double, std::milli>(
                        batch_start - item.enqueued)
                        .count();
        const auto func_start = std::chrono::steady_clock::now();
        r.batchWaitMs = std::chrono::duration<double, std::milli>(
                            func_start - batch_start)
                            .count();

        bool run_failed = false;
        for (int attempt = 0; attempt <= opts_.maxRetries; ++attempt) {
            if (inj &&
                inj->shouldFail(FaultSite{FaultSite::Kind::RequestRun,
                                          ordinal, item.id, attempt})) {
                m.counter("serve.faults_injected").add();
                if (attempt == opts_.maxRetries) {
                    run_failed = true;
                    r.error = "transient faults exhausted the retry "
                              "budget";
                    break;
                }
                r.retries = attempt + 1;
                retries_.fetch_add(1, std::memory_order_relaxed);
                m.counter("serve.retries").add();
                backoff(attempt);
                continue;
            }
            try {
                if (task_ == nn::TaskKind::LanguageModel)
                    r.stepLogits = runner.lmLogits(item.request.tokens);
                else
                    r.logits = runner.classify(item.request.tokens);
                r.executed = true;
            } catch (const std::exception &e) {
                run_failed = true;
                r.error = e.what();
            }
            break;
        }

        r.execMs = wallMsSince(func_start);
        r.latencyMs = wallMsSince(item.enqueued);
        if (run_failed) {
            r.status = Status::Failed;
            failed_.fetch_add(1, std::memory_order_relaxed);
            m.counter("serve.failed").add();
        } else if (item.request.deadlineMs > 0.0 &&
                   r.latencyMs > item.request.deadlineMs) {
            // The §10 unification of the old latent bug: an executed
            // request that finished late is a deadline miss by status,
            // not a silent success (outputs stay populated).
            r.status = Status::ShedDeadline;
            lateCompletions_.fetch_add(1, std::memory_order_relaxed);
            deadlineMisses_.fetch_add(1, std::memory_order_relaxed);
            m.counter("serve.late_completions").add();
            m.counter("serve.deadline_misses").add();
        } else {
            r.status = Status::Ok;
            ok_.fetch_add(1, std::memory_order_relaxed);
        }

        m.histogram("serve.latency_ms", serveMsEdges())
            .observe(r.latencyMs);
        m.histogram("serve.queue_ms", serveMsEdges()).observe(r.queueMs);
        m.histogram("serve.batch_wait_ms", serveMsEdges())
            .observe(r.batchWaitMs);
        m.histogram("serve.exec_ms", serveMsEdges()).observe(r.execMs);
        completed_.fetch_add(1, std::memory_order_relaxed);
        m.counter("serve.responses").add();
        recordLifecycle(obs_, static_cast<int>(worker_index), r);
        item.promise.set_value(std::move(r));
    }

    // One governor tick per batch: queue pressure + cumulative p95.
    if (governor_) {
        m.gauge("serve.queue_depth")
            .set(static_cast<double>(queue_.size()));
        governor_->observe(queue_.size(), opts_.workers,
                           latencyQuantileMs(0.95));
    }
}

std::future<Response>
Session::infer(std::vector<std::int32_t> tokens, double deadline_ms)
{
    Request req;
    req.tokens = std::move(tokens);
    req.priority = priority_;
    req.deadlineMs = deadline_ms;
    return engine_->submit(std::move(req));
}

} // namespace serve
} // namespace mflstm
