#include "serve/engine.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mflstm {
namespace serve {

namespace {

std::vector<double>
batchSizeEdges(std::size_t max_batch)
{
    std::vector<double> edges;
    edges.reserve(max_batch);
    for (std::size_t b = 1; b <= max_batch; ++b)
        edges.push_back(static_cast<double>(b));
    return edges;
}

double
wallMsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // anonymous namespace

InferenceEngine::InferenceEngine(const core::MemoryFriendlyLstm &mf,
                                 const Options &opts)
    : opts_(opts), shape_(mf.config().timingShape),
      task_(mf.runner().model().config().task),
      batcher_(queue_, opts.maxBatch)
{
    if (opts_.workers == 0)
        throw std::invalid_argument("InferenceEngine: workers == 0");

    if (opts_.observer) {
        obs_ = opts_.observer;
    } else {
        ownedObs_ = std::make_unique<obs::Observer>();
        obs_ = ownedObs_.get();
    }

    // Plan exactly as the facade would, recording planning phases into
    // this engine's sink.
    core::TimingOptions topt;
    topt.kind = opts_.plan;
    topt.pruneFraction = opts_.pruneFraction;
    topt.observer = obs_;
    plan_ = mf.evaluateTiming(topt).plan;

    executor_ = std::make_unique<runtime::NetworkExecutor>(
        mf.config().gpu, obs_);

    // Touch the instruments once so quantile queries work even before
    // the first request completes.
    obs_->metrics().histogram(
        "serve.latency_ms",
        obs::Histogram::exponentialEdges(1e-3, 1e5, 33));
    obs_->metrics().histogram("serve.batch_size",
                              batchSizeEdges(opts_.maxBatch));

    runners_.reserve(opts_.workers);
    for (std::size_t w = 0; w < opts_.workers; ++w)
        runners_.push_back(mf.runner());  // private calibrated copy

    workers_.reserve(opts_.workers);
    for (std::size_t w = 0; w < opts_.workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

InferenceEngine::~InferenceEngine()
{
    shutdown();
}

std::future<Response>
InferenceEngine::submit(Request req)
{
    if (req.tokens.empty())
        throw std::invalid_argument(
            "InferenceEngine::submit: empty token sequence");

    QueuedRequest item;
    item.request = std::move(req);
    item.id = nextId_.fetch_add(1, std::memory_order_relaxed);
    item.seq = nextSeq_.fetch_add(1, std::memory_order_relaxed);
    item.enqueued = std::chrono::steady_clock::now();
    std::future<Response> fut = item.promise.get_future();

    if (!queue_.push(std::move(item)))
        throw std::runtime_error(
            "InferenceEngine::submit: engine is shut down");
    submitted_.fetch_add(1, std::memory_order_relaxed);
    obs_->metrics().counter("serve.requests").add();
    return fut;
}

Session
InferenceEngine::session(int priority)
{
    return Session(*this, priority);
}

void
InferenceEngine::shutdown()
{
    queue_.close();
    std::lock_guard<std::mutex> lock(shutdownMu_);
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
}

InferenceEngine::Stats
InferenceEngine::stats() const
{
    Stats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.deadlineMisses = deadlineMisses_.load(std::memory_order_relaxed);
    s.maxBatchObserved =
        maxBatchObserved_.load(std::memory_order_relaxed);
    const std::uint64_t seqs =
        batchSeqSum_.load(std::memory_order_relaxed);
    s.meanBatchSize = s.batches ? static_cast<double>(seqs) /
                                      static_cast<double>(s.batches)
                                : 0.0;
    return s;
}

double
InferenceEngine::latencyQuantileMs(double q) const
{
    const obs::Histogram *h =
        obs_->metrics().findHistogram("serve.latency_ms");
    return h ? h->quantile(q) : 0.0;
}

void
InferenceEngine::workerLoop(std::size_t worker_index)
{
    core::ApproxRunner &runner = runners_[worker_index];
    for (;;) {
        std::vector<QueuedRequest> batch = batcher_.nextBatch();
        if (batch.empty())
            return;  // closed and drained
        serveBatch(std::move(batch), runner);
    }
}

void
InferenceEngine::serveBatch(std::vector<QueuedRequest> batch,
                            core::ApproxRunner &runner)
{
    const std::size_t b = batch.size();
    const auto batch_start = std::chrono::steady_clock::now();
    auto ph = obs::Observer::phase(obs_, "serve.batch");

    // Timing side: one batched lowering, weights charged once.
    const runtime::RunReport report =
        executor_->run(runtime::RunRequest::network(shape_, plan_, b));
    const double sim_ms = report.result.timeUs / 1e3;
    const double weight_per_seq = report.weightDramBytesPerSequence();

    batches_.fetch_add(1, std::memory_order_relaxed);
    batchSeqSum_.fetch_add(b, std::memory_order_relaxed);
    std::size_t seen = maxBatchObserved_.load(std::memory_order_relaxed);
    while (b > seen &&
           !maxBatchObserved_.compare_exchange_weak(
               seen, b, std::memory_order_relaxed))
        ;
    obs::MetricsRegistry &m = obs_->metrics();
    m.counter("serve.batches").add();
    m.histogram("serve.batch_size", batchSizeEdges(opts_.maxBatch))
        .observe(static_cast<double>(b));
    m.gauge("serve.weight_dram_bytes_per_seq").set(weight_per_seq);

    // Functional side: per sequence, bit-identical to a solo run.
    for (QueuedRequest &item : batch) {
        try {
            Response r;
            r.id = item.id;
            r.batch = b;
            r.simBatchMs = sim_ms;
            r.weightDramBytesPerSeq = weight_per_seq;
            r.queueMs =
                std::chrono::duration<double, std::milli>(batch_start -
                                                          item.enqueued)
                    .count();

            if (task_ == nn::TaskKind::LanguageModel)
                r.stepLogits = runner.lmLogits(item.request.tokens);
            else
                r.logits = runner.classify(item.request.tokens);

            r.latencyMs = wallMsSince(item.enqueued);
            r.deadlineMet = item.request.deadlineMs <= 0.0 ||
                            r.latencyMs <= item.request.deadlineMs;
            if (!r.deadlineMet) {
                deadlineMisses_.fetch_add(1, std::memory_order_relaxed);
                m.counter("serve.deadline_misses").add();
            }

            m.histogram(
                 "serve.latency_ms",
                 obs::Histogram::exponentialEdges(1e-3, 1e5, 33))
                .observe(r.latencyMs);
            completed_.fetch_add(1, std::memory_order_relaxed);
            m.counter("serve.responses").add();
            item.promise.set_value(std::move(r));
        } catch (...) {
            item.promise.set_exception(std::current_exception());
        }
    }
}

std::future<Response>
Session::infer(std::vector<std::int32_t> tokens, double deadline_ms)
{
    Request req;
    req.tokens = std::move(tokens);
    req.priority = priority_;
    req.deadlineMs = deadline_ms;
    return engine_->submit(std::move(req));
}

} // namespace serve
} // namespace mflstm
