/**
 * @file
 * Batched inference engine (DESIGN.md §9-§10). Owns a calibrated
 * model + executor pair and serves concurrent requests:
 *
 *   submit() / Session::infer()  ->  RequestQueue  ->  DynamicBatcher
 *       ->  worker threads  ->  per-request Response futures
 *
 * Each worker packs up to Options::maxBatch queued sequences into one
 * *batched tissue* run: the functional outputs are computed per
 * sequence (bit-identical to serving each request alone), while the
 * timing side lowers the network once with the batch dimension, so the
 * simulator charges every recurrent weight matrix's DRAM traffic once
 * per batched kernel instead of once per sequence.
 *
 * Overload control (§10): the queue is optionally bounded with a
 * configurable admission policy; queued requests whose deadline has
 * already passed are shed before they waste a batch slot; a
 * FaultInjector can force transient failures that are retried with
 * exponential backoff; and an AdaptiveThresholdGovernor walks the
 * active ThresholdSet along an AO→BPA ladder under pressure. Every
 * future resolves with exactly one terminal Status — the engine never
 * completes a promise twice, never leaks one, and never surfaces an
 * exception through a future.
 *
 * Thread safety: submit() is safe from any thread; workers record
 * through the (thread-safe) obs sinks; each worker owns a private copy
 * of the calibrated ApproxRunner per ladder rung, so functional runs
 * never share mutable state. The model, observer and fault injector
 * (when supplied) must outlive the engine.
 */

#ifndef MFLSTM_SERVE_ENGINE_HH
#define MFLSTM_SERVE_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/api.hh"
#include "serve/batcher.hh"
#include "serve/fault.hh"
#include "serve/governor.hh"
#include "serve/queue.hh"
#include "serve/request.hh"

namespace mflstm {
namespace serve {

class Session;

/** Error string on futures resolved Failed by InferenceEngine::kill(). */
inline constexpr const char *kEngineKilledError = "engine killed";

/**
 * Everything a warm restart needs to rebuild an engine without
 * re-running the expensive per-rung snapshots (plan building + planning
 * sequence replay): the plan/ladder pair plus a fingerprint tying the
 * state to the exact model and options it was computed for. Persisted
 * via serve/persist.hh.
 */
struct EngineWarmState
{
    runtime::PlanKind plan = runtime::PlanKind::Combined;
    /// hw registry backend id the plans were built under ("" on states
    /// saved before schema v5; the restart check treats "" as wildcard)
    std::string backendId;
    double pruneFraction = 0.37;
    runtime::NetworkShape shape;
    /// core::modelWeightsCrc of the model the state was computed on
    std::uint32_t modelWeightsCrc = 0;
    /// whether the saved plans came from the sched tuner (Options::
    /// tunePlans); a mismatch with the restarting engine is Stale
    bool tunedPlans = false;
    std::vector<core::ThresholdSet> ladder;
    std::vector<runtime::ExecutionPlan> plans;
};

class InferenceEngine
{
  public:
    struct Options
    {
        /// sequences packed per batched tissue run (>= 1)
        std::size_t maxBatch = 8;
        /// worker threads driving batches concurrently (>= 1)
        std::size_t workers = 2;
        /// scheme simulated for the timing side of every batch
        runtime::PlanKind plan = runtime::PlanKind::Combined;
        /// forwarded to plan building (ZeroPruning only)
        double pruneFraction = 0.37;
        /**
         * hw registry id of the backend this engine simulates on
         * (DESIGN.md §17). Recorded in tuned-plan fingerprints and the
         * warm-state artifact, so a cache or warm state built under one
         * backend is rejected as Stale under another. "" = unspecified
         * (legacy callers; no backend check on restart).
         */
        std::string backendId;
        /**
         * Replace every rung's preset plan with a sched-searched one
         * (DESIGN.md §14): after the normal rung snapshots, the engine
         * runs sched::tune per rung at that rung's quant mode and
         * serves the dominating plan — never worse than the preset on
         * simulated time or DRAM bytes. Requires a calibrated facade.
         */
        bool tunePlans = false;
        /**
         * With tunePlans, a directory for tuned-plan artifacts
         * (tuned_plan_rung<N>): hits skip the search, corrupt files
         * are quarantined and re-tuned. Empty: tune in-memory only.
         */
        std::string tuneCacheDir;
        /**
         * Observability sink (latency histograms, batch spans, sim
         * counters). nullptr: the engine owns a private Observer so
         * latency percentiles still work.
         */
        obs::Observer *observer = nullptr;

        // --- admission control (§10) ---
        /// bound on queued requests; 0 = unbounded
        std::size_t queueCapacity = 0;
        AdmissionPolicy admission = AdmissionPolicy::RejectNew;
        /// producer wait bound for BlockWithTimeout, wall ms
        double admitTimeoutMs = 5.0;

        // --- fault tolerance (§10) ---
        /// optional injector consulted at the batch-timing and
        /// per-request sites; nullptr disables injection
        FaultInjector *faultInjector = nullptr;
        /// extra attempts after a transient fault (total = 1 + retries)
        int maxRetries = 2;
        /// base backoff before a retry, doubled per attempt, wall ms
        double retryBackoffMs = 0.2;

        // --- adaptive threshold governor (§10) ---
        /**
         * AO→BPA degradation ladder (rung 0 = most accurate). Empty:
         * the engine serves at the facade's active thresholds/plan,
         * exactly as before. With >= 2 rungs the engine snapshots a
         * plan + per-worker runner per rung (via snapshotRung, driven
         * by planningSequences) and runs a governor over them.
         */
        std::vector<core::ThresholdSet> governorLadder;
        /// sequences replayed per rung to measure the division/skip
        /// statistics its plan projects (required with a ladder)
        std::vector<std::vector<std::int32_t>> planningSequences;
        /// pressure thresholds + hysteresis (rungCount is overwritten)
        AdaptiveThresholdGovernor::Config governor;
    };

    /** Aggregate serving statistics (monotonic, thread-safe reads). */
    struct Stats
    {
        std::uint64_t submitted = 0;
        /// futures resolved with any terminal status
        std::uint64_t completed = 0;
        /// subset of completed that resolved Status::Ok
        std::uint64_t ok = 0;
        std::uint64_t batches = 0;
        /// ShedDeadline resolutions (shedBeforeRun + lateCompletions)
        std::uint64_t deadlineMisses = 0;
        /// shed from the queue/batch without execution
        std::uint64_t shedBeforeRun = 0;
        /// executed but finished past the deadline
        std::uint64_t lateCompletions = 0;
        /// RejectedCapacity resolutions (admission turned them away)
        std::uint64_t rejected = 0;
        /// subset of rejected evicted from the queue by DropOldest
        std::uint64_t evicted = 0;
        /// Status::Failed resolutions (retry budget exhausted)
        std::uint64_t failed = 0;
        /// transient-fault retries performed (both sites)
        std::uint64_t retries = 0;
        /// worker loops that survived an unexpected batch error
        std::uint64_t workerRestarts = 0;
        std::uint64_t governorStepsUp = 0;
        std::uint64_t governorStepsDown = 0;
        /// deepest queue depth ever observed
        std::size_t queueHighWater = 0;
        std::size_t maxBatchObserved = 0;
        double meanBatchSize = 0.0;
    };

    /**
     * Snapshot @p mf (plan, thresholds, calibration) into a serving
     * engine and start the workers. Without a governor ladder the
     * execution plan is built exactly as MemoryFriendlyLstm::
     * evaluateTiming would for Options::plan, so run an accuracy
     * evaluation through mf.runner() first when serving a
     * statistics-driven scheme; with a ladder each rung is snapshot
     * via mf.snapshotRung over Options::planningSequences.
     *
     * @throws std::logic_error via evaluateTiming when Options::plan
     *         needs calibration that has not run.
     * @throws std::invalid_argument on workers == 0, or a governor
     *         ladder without planning sequences.
     */
    InferenceEngine(const core::MemoryFriendlyLstm &mf,
                    const Options &opts);

    /**
     * Warm restart: rebuild the engine from persisted @p warm state
     * instead of re-snapshotting every rung. @p mf must hold the same
     * model (weights CRC), timing shape and calibration the state was
     * saved from; responses are then bit-identical to the engine that
     * saved it.
     *
     * @throws io::ArtifactError(ErrorKind::Stale) when @p warm belongs
     *         to a different model, shape or plan configuration;
     *         ErrorKind::Malformed on an inconsistent state.
     * @throws std::logic_error when the state needs layer division but
     *         @p mf is not calibrated.
     */
    InferenceEngine(const core::MemoryFriendlyLstm &mf,
                    const Options &opts, const EngineWarmState &warm);

    /** Drains submitted work, then joins the workers. */
    ~InferenceEngine();

    InferenceEngine(const InferenceEngine &) = delete;
    InferenceEngine &operator=(const InferenceEngine &) = delete;

    /**
     * Enqueue one request; the future completes when a worker finishes
     * its batch — or immediately with Status::RejectedCapacity when
     * admission control turns it away. Safe from any thread. Every
     * returned future resolves with a value (a terminal Status), never
     * an exception.
     *
     * @throws std::invalid_argument on an empty token sequence.
     * @throws std::runtime_error after shutdown().
     */
    std::future<Response> submit(Request req);

    /** A lightweight submit handle with a fixed priority. */
    Session session(int priority = 0);

    /**
     * Stop accepting requests, finish everything already queued, join
     * the workers. Idempotent; the destructor calls it.
     *
     * A partially packed batch a worker already pulled from the
     * DynamicBatcher is flushed, never stranded: every accepted
     * request still resolves with a terminal Status.
     */
    void shutdown();

    /**
     * Simulated replica crash (fleet layer, DESIGN.md §16): stop
     * admissions immediately and resolve everything still queued or
     * packed into an unserved batch with Status::Failed
     * (kEngineKilledError) instead of executing it. The batch whose
     * timing run is already in flight finishes (execution is pure, so
     * its responses stay valid). Idempotent; joins the workers.
     */
    void kill();

    /** True once kill() has been called. */
    bool killed() const
    {
        return killed_.load(std::memory_order_acquire);
    }

    /**
     * Simulated brownout (fleet chaos): every subsequent batch sleeps
     * this long before its timing run, inflating wall latency the way
     * a thermally throttled / contended replica would. 0 clears it.
     */
    void setBrownoutMs(double ms);
    double brownoutMs() const
    {
        return brownoutMs_.load(std::memory_order_relaxed);
    }

    /**
     * Fleet governor hook: forbid the threshold governor from serving
     * below @p rung (clamped to the ladder). The governor converges
     * one rung per observe() tick — it never skips a rung — and
     * relaxes back down only when the floor is lowered again. No-op
     * without a governor ladder.
     */
    void setGovernorRungFloor(std::size_t rung);

    /** The serialisable warm-restart state of this engine. */
    EngineWarmState exportWarmState() const;

    /**
     * Graceful drain: stop admissions, finish everything already
     * queued, join the workers, then persist the warm-restart state to
     * @p path atomically. Idempotent on the drain half (delegates to
     * shutdown()). @throws io::ArtifactError when the write fails —
     * after the drain completed.
     */
    void drainAndSaveState(const std::string &path);

    Stats stats() const;

    /**
     * Wall-latency quantile (ms) over every completed request, from
     * the observer's "serve.latency_ms" histogram. 0 when none.
     */
    double latencyQuantileMs(double q) const;

    /** The execution plan of ladder rung @p rung (0 without a ladder). */
    const runtime::ExecutionPlan &planAt(std::size_t rung) const
    {
        return plans_.at(rung);
    }
    /** The base-rung execution plan (rung 0). */
    const runtime::ExecutionPlan &plan() const { return plans_.front(); }
    /** The threshold sets serveable by this engine (>= 1 entries). */
    const std::vector<core::ThresholdSet> &ladder() const
    {
        return ladder_;
    }
    /** The governor's current rung (0 without a governor). */
    std::size_t activeRung() const
    {
        return governor_ ? governor_->rung() : 0;
    }
    std::size_t queueDepth() const { return queue_.size(); }

    const Options &options() const { return opts_; }
    obs::Observer &observer() { return *obs_; }

  private:
    void initObserver();
    /// shared tail of both constructors: governor, executor, fault
    /// hook, instruments, per-worker runner copies, worker threads
    void finishInit(const core::MemoryFriendlyLstm &mf,
                    std::vector<core::ApproxRunner> base_runners);
    void workerLoop(std::size_t worker_index);
    /// Serves @p batch, erasing each item as its promise resolves, so
    /// a caller catching an exception can flush the leftovers.
    void serveBatch(std::vector<QueuedRequest> &batch,
                    std::size_t worker_index);
    /// complete @p item without execution; counts per @p status
    void resolveUnserved(QueuedRequest item, Status status,
                         const std::string &error = {});
    /// shed expired items from @p batch, resolving their futures
    std::vector<QueuedRequest>
    shedExpired(std::vector<QueuedRequest> batch);
    void backoff(int attempt) const;

    Options opts_;
    runtime::NetworkShape shape_;
    nn::TaskKind task_;

    std::unique_ptr<obs::Observer> ownedObs_;
    obs::Observer *obs_ = nullptr;

    std::unique_ptr<runtime::NetworkExecutor> executor_;
    /// the threshold set of each rung (size >= 1; single entry
    /// mirrors the facade's active thresholds when no ladder is given)
    std::vector<core::ThresholdSet> ladder_;
    /// one execution plan per rung (index-aligned with ladder_)
    std::vector<runtime::ExecutionPlan> plans_;
    /// runners_[worker][rung]: private calibrated runner copies
    std::vector<std::vector<core::ApproxRunner>> runners_;
    /**
     * Last quant mode each worker served a batch at (underlying enum
     * value; -1 before the worker's first batch). Only its own worker
     * thread touches an entry. Crossing a precision boundary re-pays
     * that runner's twin rebuild (model copy + fake-quant + relevance
     * contexts) so cross-backend serve comparisons account for the
     * governor's switch cost — counted in serve.precision_switch_total
     * and timed into serve.twin_rebuild_ms.
     */
    std::vector<int> lastServedQuant_;
    std::unique_ptr<AdaptiveThresholdGovernor> governor_;

    RequestQueue queue_;
    DynamicBatcher batcher_;
    std::vector<std::thread> workers_;
    std::mutex shutdownMu_;

    std::atomic<std::uint64_t> nextId_{1};
    std::atomic<std::uint64_t> nextSeq_{0};
    std::atomic<std::uint64_t> batchOrdinal_{0};
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> ok_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> batchSeqSum_{0};
    std::atomic<std::uint64_t> deadlineMisses_{0};
    std::atomic<std::uint64_t> shedBeforeRun_{0};
    std::atomic<std::uint64_t> lateCompletions_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> evicted_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::atomic<std::uint64_t> retries_{0};
    std::atomic<std::uint64_t> workerRestarts_{0};
    std::atomic<std::size_t> maxBatchObserved_{0};
    std::atomic<bool> killed_{false};
    std::atomic<double> brownoutMs_{0.0};
};

/**
 * Client handle bound to one engine: carries a default priority so a
 * latency-sensitive caller tags every request once. Copyable; the
 * engine must outlive every session.
 */
class Session
{
  public:
    /** Submit tokens with this session's priority. */
    std::future<Response> infer(std::vector<std::int32_t> tokens,
                                double deadline_ms = 0.0);

    int priority() const { return priority_; }

  private:
    friend class InferenceEngine;
    Session(InferenceEngine &engine, int priority)
        : engine_(&engine), priority_(priority)
    {}

    InferenceEngine *engine_;
    int priority_;
};

} // namespace serve
} // namespace mflstm

#endif // MFLSTM_SERVE_ENGINE_HH
