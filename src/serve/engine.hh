/**
 * @file
 * Batched inference engine (DESIGN.md §9). Owns a calibrated model +
 * executor pair and serves concurrent requests:
 *
 *   submit() / Session::infer()  ->  RequestQueue  ->  DynamicBatcher
 *       ->  worker threads  ->  per-request Response futures
 *
 * Each worker packs up to Options::maxBatch queued sequences into one
 * *batched tissue* run: the functional outputs are computed per
 * sequence (bit-identical to serving each request alone), while the
 * timing side lowers the network once with the batch dimension, so the
 * simulator charges every recurrent weight matrix's DRAM traffic once
 * per batched kernel instead of once per sequence. Weight-matrix DRAM
 * bytes per sequence therefore fall as 1/B — the serving-time extension
 * of the paper's weight-reuse principle.
 *
 * Thread safety: submit() is safe from any thread; workers record
 * through the (thread-safe) obs sinks; each worker owns a private copy
 * of the calibrated ApproxRunner, so functional runs never share
 * mutable state. The model and (if supplied) observer must outlive the
 * engine.
 */

#ifndef MFLSTM_SERVE_ENGINE_HH
#define MFLSTM_SERVE_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/api.hh"
#include "serve/batcher.hh"
#include "serve/queue.hh"
#include "serve/request.hh"

namespace mflstm {
namespace serve {

class Session;

class InferenceEngine
{
  public:
    struct Options
    {
        /// sequences packed per batched tissue run (>= 1)
        std::size_t maxBatch = 8;
        /// worker threads driving batches concurrently (>= 1)
        std::size_t workers = 2;
        /// scheme simulated for the timing side of every batch
        runtime::PlanKind plan = runtime::PlanKind::Combined;
        /// forwarded to plan building (ZeroPruning only)
        double pruneFraction = 0.37;
        /**
         * Observability sink (latency histograms, batch spans, sim
         * counters). nullptr: the engine owns a private Observer so
         * latency percentiles still work.
         */
        obs::Observer *observer = nullptr;
    };

    /** Aggregate serving statistics (monotonic, thread-safe reads). */
    struct Stats
    {
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t batches = 0;
        std::uint64_t deadlineMisses = 0;
        std::size_t maxBatchObserved = 0;
        double meanBatchSize = 0.0;
    };

    /**
     * Snapshot @p mf (plan, thresholds, calibration) into a serving
     * engine and start the workers. Builds the execution plan exactly
     * as MemoryFriendlyLstm::evaluateTiming would for Options::plan, so
     * run an accuracy evaluation through mf.runner() first when serving
     * a statistics-driven scheme (Combined / layer division / DRS).
     *
     * @throws std::logic_error via evaluateTiming when Options::plan
     *         needs calibration that has not run.
     */
    InferenceEngine(const core::MemoryFriendlyLstm &mf,
                    const Options &opts);

    /** Drains submitted work, then joins the workers. */
    ~InferenceEngine();

    InferenceEngine(const InferenceEngine &) = delete;
    InferenceEngine &operator=(const InferenceEngine &) = delete;

    /**
     * Enqueue one request; the future completes when a worker finishes
     * its batch. Safe from any thread.
     *
     * @throws std::invalid_argument on an empty token sequence.
     * @throws std::runtime_error after shutdown().
     */
    std::future<Response> submit(Request req);

    /** A lightweight submit handle with a fixed priority. */
    Session session(int priority = 0);

    /**
     * Stop accepting requests, finish everything already queued, join
     * the workers. Idempotent; the destructor calls it.
     */
    void shutdown();

    Stats stats() const;

    /**
     * Wall-latency quantile (ms) over every completed request, from
     * the observer's "serve.latency_ms" histogram. 0 when none.
     */
    double latencyQuantileMs(double q) const;

    /** The execution plan every batch simulates. */
    const runtime::ExecutionPlan &plan() const { return plan_; }
    const Options &options() const { return opts_; }
    obs::Observer &observer() { return *obs_; }

  private:
    void workerLoop(std::size_t worker_index);
    void serveBatch(std::vector<QueuedRequest> batch,
                    core::ApproxRunner &runner);

    Options opts_;
    runtime::NetworkShape shape_;
    runtime::ExecutionPlan plan_;
    nn::TaskKind task_;

    std::unique_ptr<obs::Observer> ownedObs_;
    obs::Observer *obs_ = nullptr;

    std::unique_ptr<runtime::NetworkExecutor> executor_;
    /// one private calibrated runner per worker (index-aligned)
    std::vector<core::ApproxRunner> runners_;

    RequestQueue queue_;
    DynamicBatcher batcher_;
    std::vector<std::thread> workers_;
    std::mutex shutdownMu_;

    std::atomic<std::uint64_t> nextId_{1};
    std::atomic<std::uint64_t> nextSeq_{0};
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> batchSeqSum_{0};
    std::atomic<std::uint64_t> deadlineMisses_{0};
    std::atomic<std::size_t> maxBatchObserved_{0};
};

/**
 * Client handle bound to one engine: carries a default priority so a
 * latency-sensitive caller tags every request once. Copyable; the
 * engine must outlive every session.
 */
class Session
{
  public:
    /** Submit tokens with this session's priority. */
    std::future<Response> infer(std::vector<std::int32_t> tokens,
                                double deadline_ms = 0.0);

    int priority() const { return priority_; }

  private:
    friend class InferenceEngine;
    Session(InferenceEngine &engine, int priority)
        : engine_(&engine), priority_(priority)
    {}

    InferenceEngine *engine_;
    int priority_;
};

} // namespace serve
} // namespace mflstm

#endif // MFLSTM_SERVE_ENGINE_HH
