#include "serve/batcher.hh"

#include <stdexcept>

namespace mflstm {
namespace serve {

DynamicBatcher::DynamicBatcher(RequestQueue &queue,
                               std::size_t max_batch)
    : queue_(queue), maxBatch_(max_batch)
{
    if (max_batch == 0)
        throw std::invalid_argument("DynamicBatcher: max_batch == 0");
}

std::vector<QueuedRequest>
DynamicBatcher::nextBatch()
{
    std::vector<QueuedRequest> batch;
    QueuedRequest first;
    if (!queue_.popWait(first))
        return batch;
    batch.reserve(maxBatch_);
    batch.push_back(std::move(first));
    queue_.drain(batch, maxBatch_ - 1);
    return batch;
}

} // namespace serve
} // namespace mflstm
