#include "serve/fault.hh"

#include <algorithm>

namespace mflstm {
namespace serve {

ProbabilisticFaultInjector::ProbabilisticFaultInjector(
    double rate, std::uint64_t seed, std::uint64_t max_faults)
    : rate_(std::clamp(rate, 0.0, 1.0)), maxFaults_(max_faults),
      rng_(seed)
{}

bool
ProbabilisticFaultInjector::shouldFail(const FaultSite &)
{
    if (rate_ <= 0.0 ||
        injected_.load(std::memory_order_relaxed) >= maxFaults_)
        return false;
    double draw;
    {
        std::lock_guard<std::mutex> lock(mu_);
        draw = std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
    }
    if (draw >= rate_)
        return false;
    injected_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
ScriptedFaultInjector::failRequest(RequestId id, int attempts)
{
    std::lock_guard<std::mutex> lock(mu_);
    requestScript_[id] = attempts;
}

void
ScriptedFaultInjector::failBatch(std::uint64_t ordinal, int attempts)
{
    std::lock_guard<std::mutex> lock(mu_);
    batchScript_[ordinal] = attempts;
}

bool
ScriptedFaultInjector::shouldFail(const FaultSite &site)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (site.kind == FaultSite::Kind::RequestRun) {
        int &seen = seen_[site.requestId];
        seen = std::max(seen, site.attempt + 1);
        const auto it = requestScript_.find(site.requestId);
        if (it != requestScript_.end() && site.attempt < it->second) {
            ++injected_;
            return true;
        }
        return false;
    }
    const auto it = batchScript_.find(site.batchOrdinal);
    if (it != batchScript_.end() && site.attempt < it->second) {
        ++injected_;
        return true;
    }
    return false;
}

int
ScriptedFaultInjector::attemptsSeen(RequestId id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = seen_.find(id);
    return it == seen_.end() ? 0 : it->second;
}

std::uint64_t
ScriptedFaultInjector::injected() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return injected_;
}

} // namespace serve
} // namespace mflstm
