#include "serve/queue.hh"

#include <algorithm>
#include <chrono>

namespace mflstm {
namespace serve {

namespace {

/**
 * Max-heap "less": a sorts after b when a has lower priority, or equal
 * priority but a later admission (higher seq). The heap top is then the
 * highest-priority, oldest item.
 */
bool
heapLess(const QueuedRequest &a, const QueuedRequest &b)
{
    if (a.request.priority != b.request.priority)
        return a.request.priority < b.request.priority;
    return a.seq > b.seq;
}

} // anonymous namespace

const char *
toString(Status s)
{
    switch (s) {
    case Status::Ok:
        return "ok";
    case Status::ShedDeadline:
        return "shed-deadline";
    case Status::RejectedCapacity:
        return "rejected-capacity";
    case Status::Failed:
        return "failed";
    }
    return "?";
}

const char *
toString(AdmissionPolicy p)
{
    switch (p) {
    case AdmissionPolicy::RejectNew:
        return "reject-new";
    case AdmissionPolicy::DropOldest:
        return "drop-oldest";
    case AdmissionPolicy::BlockWithTimeout:
        return "block-with-timeout";
    }
    return "?";
}

void
RequestQueue::admitLocked(QueuedRequest item)
{
    heap_.push_back(std::move(item));
    std::push_heap(heap_.begin(), heap_.end(), heapLess);
    ++counters_.admitted;
    counters_.highWater = std::max(counters_.highWater, heap_.size());
}

RequestQueue::PushOutcome
RequestQueue::push(QueuedRequest item, std::vector<QueuedRequest> *bounced)
{
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) {
        if (bounced)
            bounced->push_back(std::move(item));
        return PushOutcome::Closed;
    }

    if (fullLocked()) {
        switch (opt_.policy) {
        case AdmissionPolicy::RejectNew:
            ++counters_.rejected;
            if (bounced)
                bounced->push_back(std::move(item));
            return PushOutcome::RejectedCapacity;

        case AdmissionPolicy::DropOldest: {
            // Victim: the globally oldest admission (minimum seq) —
            // under deadline pressure it is the closest to expiry.
            const auto victim = std::min_element(
                heap_.begin(), heap_.end(),
                [](const QueuedRequest &a, const QueuedRequest &b) {
                    return a.seq < b.seq;
                });
            if (bounced)
                bounced->push_back(std::move(*victim));
            heap_.erase(victim);
            std::make_heap(heap_.begin(), heap_.end(), heapLess);
            ++counters_.evicted;
            break;
        }

        case AdmissionPolicy::BlockWithTimeout: {
            const auto deadline =
                std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        opt_.blockTimeoutMs));
            spaceCv_.wait_until(lock, deadline, [&] {
                return closed_ || !fullLocked();
            });
            if (closed_) {
                if (bounced)
                    bounced->push_back(std::move(item));
                return PushOutcome::Closed;
            }
            if (fullLocked()) {  // timed out, still full
                ++counters_.rejected;
                if (bounced)
                    bounced->push_back(std::move(item));
                return PushOutcome::RejectedCapacity;
            }
            break;
        }
        }
    }

    admitLocked(std::move(item));
    lock.unlock();
    cv_.notify_one();
    return PushOutcome::Admitted;
}

bool
RequestQueue::popWait(QueuedRequest &out)
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !heap_.empty(); });
    if (heap_.empty())
        return false;
    std::pop_heap(heap_.begin(), heap_.end(), heapLess);
    out = std::move(heap_.back());
    heap_.pop_back();
    lock.unlock();
    spaceCv_.notify_one();
    return true;
}

std::size_t
RequestQueue::drain(std::vector<QueuedRequest> &out, std::size_t max)
{
    std::unique_lock<std::mutex> lock(mu_);
    std::size_t n = 0;
    while (n < max && !heap_.empty()) {
        std::pop_heap(heap_.begin(), heap_.end(), heapLess);
        out.push_back(std::move(heap_.back()));
        heap_.pop_back();
        ++n;
    }
    lock.unlock();
    if (n)
        spaceCv_.notify_all();
    return n;
}

std::size_t
RequestQueue::shedExpired(std::chrono::steady_clock::time_point now,
                          std::vector<QueuedRequest> &out)
{
    std::unique_lock<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (std::size_t i = 0; i < heap_.size();) {
        if (heap_[i].expired(now)) {
            out.push_back(std::move(heap_[i]));
            heap_[i] = std::move(heap_.back());
            heap_.pop_back();
            ++n;
        } else {
            ++i;
        }
    }
    if (n) {
        std::make_heap(heap_.begin(), heap_.end(), heapLess);
        counters_.shed += n;
    }
    lock.unlock();
    if (n)
        spaceCv_.notify_all();
    return n;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
    spaceCv_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return heap_.size();
}

RequestQueue::Counters
RequestQueue::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

} // namespace serve
} // namespace mflstm
