#include "serve/queue.hh"

#include <algorithm>

namespace mflstm {
namespace serve {

namespace {

/**
 * Max-heap "less": a sorts after b when a has lower priority, or equal
 * priority but a later admission (higher seq). The heap top is then the
 * highest-priority, oldest item.
 */
bool
heapLess(const QueuedRequest &a, const QueuedRequest &b)
{
    if (a.request.priority != b.request.priority)
        return a.request.priority < b.request.priority;
    return a.seq > b.seq;
}

} // anonymous namespace

bool
RequestQueue::push(QueuedRequest item)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_)
            return false;
        heap_.push_back(std::move(item));
        std::push_heap(heap_.begin(), heap_.end(), heapLess);
    }
    cv_.notify_one();
    return true;
}

bool
RequestQueue::popWait(QueuedRequest &out)
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !heap_.empty(); });
    if (heap_.empty())
        return false;
    std::pop_heap(heap_.begin(), heap_.end(), heapLess);
    out = std::move(heap_.back());
    heap_.pop_back();
    return true;
}

std::size_t
RequestQueue::drain(std::vector<QueuedRequest> &out, std::size_t max)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    while (n < max && !heap_.empty()) {
        std::pop_heap(heap_.begin(), heap_.end(), heapLess);
        out.push_back(std::move(heap_.back()));
        heap_.pop_back();
        ++n;
    }
    return n;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return heap_.size();
}

} // namespace serve
} // namespace mflstm
