/**
 * @file
 * The quantization format vocabulary (DESIGN.md §12). Header-only on
 * purpose: runtime/gpu/core only need the enum and the bytes-per-weight
 * scale to price DRAM traffic, and pulling a library edge from those
 * layers into src/quant would invert the dependency order (quant links
 * nn, nn links tensor). Everything that needs actual weights lives in
 * quant/quantize.hh.
 */

#ifndef MFLSTM_QUANT_QFORMAT_HH
#define MFLSTM_QUANT_QFORMAT_HH

#include <cstdint>
#include <optional>
#include <string>

namespace mflstm {
namespace quant {

/**
 * Weight precision of the recurrent/input matrices (`U`, `W`).
 * Biases, the embedding table and the head stay fp32 — they are a
 * rounding error of the traffic (Section III: `U` dominates) and
 * keeping them exact isolates the quantization error to the GEMM/GEMV
 * operands the bound in quant/quantize.hh reasons about.
 */
enum class QuantMode : std::uint32_t {
    Fp32 = 0,  ///< no quantization (the seed behaviour)
    Int8 = 1,  ///< symmetric per-row int8, scale = absmax/127
    Int4 = 2,  ///< symmetric per-row int4 (nibble-packed), scale = absmax/7
};

/** DRAM bytes one weight element occupies in @p m. */
constexpr double
bytesPerWeight(QuantMode m)
{
    switch (m) {
    case QuantMode::Int8:
        return 1.0;
    case QuantMode::Int4:
        return 0.5;
    case QuantMode::Fp32:
    default:
        return 4.0;
    }
}

/** Largest representable magnitude of the integer code. */
constexpr int
qmax(QuantMode m)
{
    // Int4 uses the symmetric range [-7, 7]: sacrificing -8 keeps
    // negation exact and the code distribution symmetric around 0.
    return m == QuantMode::Int8 ? 127 : m == QuantMode::Int4 ? 7 : 0;
}

constexpr const char *
toString(QuantMode m)
{
    switch (m) {
    case QuantMode::Int8:
        return "int8";
    case QuantMode::Int4:
        return "int4";
    case QuantMode::Fp32:
    default:
        return "fp32";
    }
}

/** Parse a CLI spelling; nullopt on anything unknown. */
inline std::optional<QuantMode>
parseQuantMode(const std::string &s)
{
    if (s == "fp32")
        return QuantMode::Fp32;
    if (s == "int8")
        return QuantMode::Int8;
    if (s == "int4")
        return QuantMode::Int4;
    return std::nullopt;
}

} // namespace quant
} // namespace mflstm

#endif // MFLSTM_QUANT_QFORMAT_HH
