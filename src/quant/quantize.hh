/**
 * @file
 * Post-training weight quantization of an LSTM model (DESIGN.md §12).
 *
 * Two complementary representations of "the same" quantized network:
 *
 *  - QuantizedModel: the integer codes + per-row scales of every W/U
 *    matrix — what the artifact container persists and what a deployed
 *    kernel would stream from DRAM;
 *
 *  - fake-quant (applyFakeQuant): the quantize-dequantize round trip
 *    applied in place to an fp32 model, so the existing fp32 dataflow
 *    (ApproxRunner, DRS, tissues) computes *exactly* what the
 *    dequantize-in-register kernels of tensor/qmatrix.hh compute. The
 *    accuracy the ladder measures through a fake-quantized model is
 *    therefore the accuracy of serving the quantized artifact.
 *
 * Error bound: per-row symmetric quantization guarantees
 * |w - s_r q| <= s_r/2 = absmax_r/(2 qmax), so a GEMV row output
 * drifts by at most (s_r/2) sum|x| — measured end-to-end by
 * measureQuantError over workload-registry sequences.
 */

#ifndef MFLSTM_QUANT_QUANTIZE_HH
#define MFLSTM_QUANT_QUANTIZE_HH

#include <cstdint>
#include <vector>

#include "nn/model.hh"
#include "quant/qformat.hh"
#include "tensor/qmatrix.hh"

namespace mflstm {
namespace quant {

/** The eight quantized gate matrices of one layer (biases stay fp32). */
struct QuantizedLayer
{
    tensor::QuantizedMatrix wf, wi, wc, wo;  ///< input weights (H x E)
    tensor::QuantizedMatrix uf, ui, uc, uo;  ///< recurrent weights (H x H)

    bool operator==(const QuantizedLayer &) const = default;
};

/** A fully quantized weight set, fingerprinted against its fp32 source. */
struct QuantizedModel
{
    QuantMode mode = QuantMode::Int8;
    /// quant::modelWeightsCrc of the fp32 model this was produced from
    std::uint32_t sourceWeightsCrc = 0;
    std::vector<QuantizedLayer> layers;

    bool operator==(const QuantizedModel &) const = default;
};

/**
 * CRC32 over every trainable parameter in a fixed order (embedding,
 * per-layer W/U/b, head). This is the single weight-fingerprint
 * algorithm of the artifact layer — core::modelWeightsCrc delegates
 * here so calibration, warm-state and quantized artifacts all agree.
 */
std::uint32_t modelWeightsCrc(const nn::LstmModel &model);

/** Quantize every W/U matrix of @p model. @p mode must not be Fp32. */
QuantizedModel quantizeModel(const nn::LstmModel &model, QuantMode mode);

/**
 * Overwrite @p model's W/U matrices with @p q's dequantized values.
 * Dimensions must match (assert); biases/embedding/head are untouched.
 */
void dequantizeInto(const QuantizedModel &q, nn::LstmModel &model);

/** What applyFakeQuant did to the weights. */
struct FakeQuantStats
{
    QuantMode mode = QuantMode::Fp32;
    std::size_t matrices = 0;  ///< W/U matrices rewritten
    std::size_t elements = 0;  ///< weight elements rewritten
    double maxAbsError = 0.0;  ///< max |w - dequant(quant(w))|
    double meanAbsError = 0.0;
    double fp32Bytes = 0.0;    ///< what the rewritten matrices occupied
    double quantBytes = 0.0;   ///< what their quantized form occupies

    /** Weight-byte compression (4x for int8, 8x for int4). */
    double compressionRatio() const
    {
        return quantBytes > 0.0 ? fp32Bytes / quantBytes : 1.0;
    }
};

/**
 * Quantize-dequantize every W/U matrix of @p model in place. Fp32 mode
 * is a no-op (zero-error stats). Idempotent: quantizing an already
 * fake-quantized model reproduces it exactly, because every value is
 * already representable at its row's scale.
 */
FakeQuantStats applyFakeQuant(nn::LstmModel &model, QuantMode mode);

/** End-to-end drift of the quantized forward pass vs exact fp32. */
struct QuantErrorReport
{
    QuantMode mode = QuantMode::Fp32;
    std::size_t sequences = 0;
    double maxAbsLogitError = 0.0;
    double meanAbsLogitError = 0.0;
    /// fraction of sequences whose argmax logit changed (classification
    /// top-1 flips; per-step flips for language models)
    double argmaxFlipRate = 0.0;
};

/**
 * The calibration pass: run @p seqs (typically the workload registry's
 * calibration sequences) through @p model exact and fake-quantized, and
 * report logit drift. The model is copied; nothing is mutated.
 */
QuantErrorReport
measureQuantError(const nn::LstmModel &model, QuantMode mode,
                  const std::vector<std::vector<std::int32_t>> &seqs);

} // namespace quant
} // namespace mflstm

#endif // MFLSTM_QUANT_QUANTIZE_HH
