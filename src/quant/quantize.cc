#include "quant/quantize.hh"

#include <cassert>
#include <cmath>

#include "io/artifact.hh"
#include "tensor/ops.hh"

namespace mflstm {
namespace quant {

namespace {

/** The W/U matrices of one layer in serialization order. */
std::vector<tensor::Matrix *>
weightMatrices(nn::LstmLayerParams &p)
{
    return {&p.wf, &p.wi, &p.wc, &p.wo, &p.uf, &p.ui, &p.uc, &p.uo};
}

std::vector<tensor::QuantizedMatrix *>
weightMatrices(QuantizedLayer &l)
{
    return {&l.wf, &l.wi, &l.wc, &l.wo, &l.uf, &l.ui, &l.uc, &l.uo};
}

std::vector<const tensor::QuantizedMatrix *>
weightMatrices(const QuantizedLayer &l)
{
    return {&l.wf, &l.wi, &l.wc, &l.wo, &l.uf, &l.ui, &l.uc, &l.uo};
}

} // namespace

std::uint32_t
modelWeightsCrc(const nn::LstmModel &model)
{
    std::uint32_t crc = 0;
    const auto feed = [&](const float *data, std::size_t n) {
        crc = io::crc32(data, n * sizeof(float), crc);
    };
    feed(model.embedding().table.data(), model.embedding().table.size());
    for (const nn::LstmLayerParams &p : model.layers()) {
        for (const tensor::Matrix *m :
             {&p.wf, &p.wi, &p.wc, &p.wo, &p.uf, &p.ui, &p.uc, &p.uo})
            feed(m->data(), m->size());
        for (const tensor::Vector *v : {&p.bf, &p.bi, &p.bc, &p.bo})
            feed(v->data(), v->size());
    }
    feed(model.head().w.data(), model.head().w.size());
    feed(model.head().b.data(), model.head().b.size());
    return crc;
}

QuantizedModel
quantizeModel(const nn::LstmModel &model, QuantMode mode)
{
    assert(mode != QuantMode::Fp32);
    QuantizedModel out;
    out.mode = mode;
    out.sourceWeightsCrc = modelWeightsCrc(model);
    out.layers.resize(model.layers().size());
    for (std::size_t l = 0; l < model.layers().size(); ++l) {
        const nn::LstmLayerParams &p = model.layers()[l];
        const tensor::Matrix *src[] = {&p.wf, &p.wi, &p.wc, &p.wo,
                                       &p.uf, &p.ui, &p.uc, &p.uo};
        auto dst = weightMatrices(out.layers[l]);
        for (std::size_t i = 0; i < dst.size(); ++i)
            *dst[i] = tensor::QuantizedMatrix::quantize(*src[i], mode);
    }
    return out;
}

void
dequantizeInto(const QuantizedModel &q, nn::LstmModel &model)
{
    assert(q.layers.size() == model.layers().size());
    for (std::size_t l = 0; l < q.layers.size(); ++l) {
        auto src = weightMatrices(q.layers[l]);
        auto dst = weightMatrices(model.layers()[l]);
        for (std::size_t i = 0; i < src.size(); ++i) {
            assert(src[i]->rows() == dst[i]->rows() &&
                   src[i]->cols() == dst[i]->cols());
            *dst[i] = src[i]->dequantize();
        }
    }
}

FakeQuantStats
applyFakeQuant(nn::LstmModel &model, QuantMode mode)
{
    FakeQuantStats st;
    st.mode = mode;
    if (mode == QuantMode::Fp32)
        return st;
    double err_sum = 0.0;
    for (nn::LstmLayerParams &p : model.layers()) {
        for (tensor::Matrix *m : weightMatrices(p)) {
            const tensor::QuantizedMatrix q =
                tensor::QuantizedMatrix::quantize(*m, mode);
            st.matrices += 1;
            st.elements += m->size();
            st.fp32Bytes += static_cast<double>(m->bytes());
            st.quantBytes +=
                static_cast<double>(q.payload().size()) +
                static_cast<double>(q.scales().size() * sizeof(float));
            for (std::size_t r = 0; r < m->rows(); ++r)
                for (std::size_t c = 0; c < m->cols(); ++c) {
                    const float dq = q.dequant(r, c);
                    const double e =
                        std::fabs(static_cast<double>(m->at(r, c)) -
                                  static_cast<double>(dq));
                    st.maxAbsError = std::max(st.maxAbsError, e);
                    err_sum += e;
                    m->at(r, c) = dq;
                }
        }
    }
    if (st.elements > 0)
        st.meanAbsError = err_sum / static_cast<double>(st.elements);
    return st;
}

QuantErrorReport
measureQuantError(const nn::LstmModel &model, QuantMode mode,
                  const std::vector<std::vector<std::int32_t>> &seqs)
{
    QuantErrorReport rep;
    rep.mode = mode;
    rep.sequences = seqs.size();
    if (mode == QuantMode::Fp32 || seqs.empty())
        return rep;

    nn::LstmModel quantized = model;
    applyFakeQuant(quantized, mode);

    const bool lm =
        model.config().task == nn::TaskKind::LanguageModel;
    double err_sum = 0.0;
    std::size_t logits_seen = 0;
    std::size_t argmax_total = 0;
    std::size_t argmax_flips = 0;
    const auto compare = [&](const tensor::Vector &exact,
                             const tensor::Vector &approx) {
        assert(exact.size() == approx.size());
        for (std::size_t i = 0; i < exact.size(); ++i) {
            const double e = std::fabs(
                static_cast<double>(exact[i]) -
                static_cast<double>(approx[i]));
            rep.maxAbsLogitError = std::max(rep.maxAbsLogitError, e);
            err_sum += e;
        }
        logits_seen += exact.size();
        argmax_total += 1;
        if (tensor::argmax(exact.span()) !=
            tensor::argmax(approx.span()))
            argmax_flips += 1;
    };
    for (const auto &s : seqs) {
        if (s.empty())
            continue;
        if (lm) {
            const auto exact = model.lmLogits(s);
            const auto approx = quantized.lmLogits(s);
            for (std::size_t t = 0; t < exact.size(); ++t)
                compare(exact[t], approx[t]);
        } else {
            compare(model.classify(s), quantized.classify(s));
        }
    }
    if (logits_seen > 0)
        rep.meanAbsLogitError =
            err_sum / static_cast<double>(logits_seen);
    if (argmax_total > 0)
        rep.argmaxFlipRate = static_cast<double>(argmax_flips) /
                             static_cast<double>(argmax_total);
    return rep;
}

} // namespace quant
} // namespace mflstm
