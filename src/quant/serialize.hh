/**
 * @file
 * Quantized-model persistence (DESIGN.md §11/§12): a QuantizedModel as
 * an io artifact container (schema kSchemaQuantModel) with one config
 * chunk and one chunk per layer. Loading re-validates everything the
 * format promises — dimensions against limits, scale vectors finite,
 * non-zero and row-count-matched, payload sizes exact, codes within
 * the symmetric range — so `mflstm fsck` gets deep verification for
 * free and a load can never hand back a structurally invalid model.
 */

#ifndef MFLSTM_QUANT_SERIALIZE_HH
#define MFLSTM_QUANT_SERIALIZE_HH

#include <string>

#include "io/artifact.hh"
#include "obs/observer.hh"
#include "quant/quantize.hh"

namespace mflstm {
namespace quant {

/** Atomic write of @p q to @p path (schema kSchemaQuantModel v1). */
void saveQuantizedModel(const QuantizedModel &q, const std::string &path);

/**
 * Load and fully validate a quantized-model artifact.
 * @throws io::ArtifactError (typed kind) on any damage; the rejection
 * is counted on @p obs when provided.
 */
QuantizedModel
loadQuantizedModel(const std::string &path,
                   const io::ArtifactLimits &limits = {},
                   obs::Observer *obs = nullptr);

/**
 * Load, then additionally require the artifact's fingerprint to match
 * @p source's weights (ErrorKind::Stale otherwise) — the guard against
 * serving quantized weights of some other checkpoint.
 */
QuantizedModel
loadQuantizedModelFor(const nn::LstmModel &source, const std::string &path,
                      const io::ArtifactLimits &limits = {},
                      obs::Observer *obs = nullptr);

/** Deep verification without keeping the model (fsck). */
void verifyQuantizedModelFile(const std::string &path,
                              const io::ArtifactLimits &limits = {});

} // namespace quant
} // namespace mflstm

#endif // MFLSTM_QUANT_SERIALIZE_HH
