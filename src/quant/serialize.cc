#include "quant/serialize.hh"

#include <cmath>
#include <utility>

namespace mflstm {
namespace quant {

namespace {

using io::ArtifactError;
using io::ErrorKind;

constexpr std::uint32_t kQuantSchemaVersion = 1;
constexpr std::uint32_t kChunkConfig = io::fourcc('Q', 'C', 'F', 'G');

std::uint32_t
layerTag(std::size_t l)
{
    return io::indexedTag('Q', 'L', l);
}

void
writeMatrix(io::ByteWriter &w, const tensor::QuantizedMatrix &m)
{
    w.u64(m.rows());
    w.u64(m.cols());
    w.f32Array(m.scales());
    w.u8Array(m.payload());
}

tensor::QuantizedMatrix
readMatrix(io::ByteReader &r, QuantMode mode,
           const io::ArtifactLimits &limits, const std::string &ctx)
{
    const std::uint64_t rows = r.u64();
    const std::uint64_t cols = r.u64();
    if (rows == 0 || cols == 0 || rows > limits.maxDim ||
        cols > limits.maxDim)
        throw ArtifactError(ErrorKind::Malformed,
                            ctx + ": bad dimensions " +
                                std::to_string(rows) + "x" +
                                std::to_string(cols));
    io::checkedMul(rows, cols, ctx.c_str());
    if (rows * cols > limits.maxElements)
        throw ArtifactError(ErrorKind::LimitExceeded,
                            ctx + ": matrix exceeds element limit");

    std::vector<float> scales = r.f32Array();
    if (scales.size() != rows)
        throw ArtifactError(ErrorKind::Malformed,
                            ctx + ": " + std::to_string(scales.size()) +
                                " scales for " + std::to_string(rows) +
                                " rows");
    for (float s : scales) {
        if (!std::isfinite(s))
            throw ArtifactError(ErrorKind::NonFinite,
                                ctx + ": non-finite row scale");
        if (s == 0.0f)
            throw ArtifactError(ErrorKind::Malformed,
                                ctx + ": zero row scale");
    }

    std::vector<std::int8_t> payload = r.u8Array();
    const std::uint64_t packed_row =
        mode == QuantMode::Int4 ? (cols + 1) / 2 : cols;
    if (payload.size() != rows * packed_row)
        throw ArtifactError(ErrorKind::Malformed,
                            ctx + ": payload of " +
                                std::to_string(payload.size()) +
                                " bytes, expected " +
                                std::to_string(rows * packed_row));
    // Canonical-code checks: the encoder never emits the asymmetric
    // minimum (-128 / nibble -8), and a trailing odd int4 column
    // leaves its high nibble zero. Enforcing this keeps save(load(x))
    // bit-identical and catches in-payload bit flips the CRC already
    // caught at the container level.
    if (mode == QuantMode::Int8) {
        for (std::int8_t b : payload)
            if (b == -128)
                throw ArtifactError(ErrorKind::Malformed,
                                    ctx + ": int8 code -128");
    } else {
        const bool odd = (cols % 2) != 0;
        for (std::uint64_t row = 0; row < rows; ++row)
            for (std::uint64_t i = 0; i < packed_row; ++i) {
                const std::uint8_t b = static_cast<std::uint8_t>(
                    payload[row * packed_row + i]);
                if ((b & 0x0f) == 0x08 ||
                    ((b >> 4) == 0x08 &&
                     !(odd && i + 1 == packed_row)))
                    throw ArtifactError(ErrorKind::Malformed,
                                        ctx + ": int4 code -8");
                if (odd && i + 1 == packed_row && (b >> 4) != 0)
                    throw ArtifactError(
                        ErrorKind::Malformed,
                        ctx + ": trailing int4 nibble not zero");
            }
    }
    return tensor::QuantizedMatrix::fromParts(
        static_cast<std::size_t>(rows), static_cast<std::size_t>(cols),
        mode, std::move(scales), std::move(payload));
}

QuantizedModel
loadValidated(const std::string &path, const io::ArtifactLimits &limits)
{
    io::ArtifactReader reader(path, io::kSchemaQuantModel, limits);
    if (reader.schemaVersion() != kQuantSchemaVersion)
        throw ArtifactError(ErrorKind::BadVersion,
                            "loadQuantizedModel: " + path +
                                ": unsupported schema version " +
                                std::to_string(reader.schemaVersion()));

    io::ByteReader cfg = reader.chunk(kChunkConfig);
    QuantizedModel q;
    const std::uint32_t mode = cfg.u32();
    if (mode != static_cast<std::uint32_t>(QuantMode::Int8) &&
        mode != static_cast<std::uint32_t>(QuantMode::Int4))
        throw ArtifactError(ErrorKind::Malformed,
                            "loadQuantizedModel: " + path +
                                ": bad quant mode " +
                                std::to_string(mode));
    q.mode = static_cast<QuantMode>(mode);
    q.sourceWeightsCrc = cfg.u32();
    const std::uint64_t layers = cfg.u64();
    cfg.expectEnd();
    if (layers == 0 || layers > limits.maxChunks)
        throw ArtifactError(ErrorKind::Malformed,
                            "loadQuantizedModel: " + path + ": " +
                                std::to_string(layers) + " layers");

    q.layers.resize(static_cast<std::size_t>(layers));
    for (std::size_t l = 0; l < q.layers.size(); ++l) {
        const std::string ctx =
            "loadQuantizedModel: " + path + ": layer " +
            std::to_string(l);
        io::ByteReader r = reader.chunk(layerTag(l));
        auto read = [&](const char *name) {
            return readMatrix(r, q.mode, limits,
                              ctx + " " + name);
        };
        QuantizedLayer &ql = q.layers[l];
        ql.wf = read("wf");
        ql.wi = read("wi");
        ql.wc = read("wc");
        ql.wo = read("wo");
        ql.uf = read("uf");
        ql.ui = read("ui");
        ql.uc = read("uc");
        ql.uo = read("uo");
        r.expectEnd();
        // The recurrent matrices must be square and agree with each
        // other — "row counts match header" at the layer level.
        const std::size_t h = ql.uf.rows();
        for (const tensor::QuantizedMatrix *m :
             {&ql.wf, &ql.wi, &ql.wc, &ql.wo})
            if (m->rows() != h)
                throw ArtifactError(ErrorKind::Malformed,
                                    ctx + ": W row count " +
                                        std::to_string(m->rows()) +
                                        " != hidden " +
                                        std::to_string(h));
        for (const tensor::QuantizedMatrix *m :
             {&ql.uf, &ql.ui, &ql.uc, &ql.uo})
            if (m->rows() != h || m->cols() != h)
                throw ArtifactError(ErrorKind::Malformed,
                                    ctx + ": U is not " +
                                        std::to_string(h) + "x" +
                                        std::to_string(h));
    }
    return q;
}

} // namespace

void
saveQuantizedModel(const QuantizedModel &q, const std::string &path)
{
    io::ArtifactWriter w(io::kSchemaQuantModel, kQuantSchemaVersion);
    io::ByteWriter &cfg = w.chunk(kChunkConfig);
    cfg.u32(static_cast<std::uint32_t>(q.mode));
    cfg.u32(q.sourceWeightsCrc);
    cfg.u64(q.layers.size());
    for (std::size_t l = 0; l < q.layers.size(); ++l) {
        io::ByteWriter &lw = w.chunk(layerTag(l));
        const QuantizedLayer &ql = q.layers[l];
        for (const tensor::QuantizedMatrix *m :
             {&ql.wf, &ql.wi, &ql.wc, &ql.wo, &ql.uf, &ql.ui, &ql.uc,
              &ql.uo})
            writeMatrix(lw, *m);
    }
    w.commit(path);
}

QuantizedModel
loadQuantizedModel(const std::string &path,
                   const io::ArtifactLimits &limits, obs::Observer *obs)
{
    try {
        return loadValidated(path, limits);
    } catch (const ArtifactError &e) {
        io::recordRejection(obs, e.kind());
        throw;
    }
}

QuantizedModel
loadQuantizedModelFor(const nn::LstmModel &source, const std::string &path,
                      const io::ArtifactLimits &limits,
                      obs::Observer *obs)
{
    QuantizedModel q = loadQuantizedModel(path, limits, obs);
    if (q.sourceWeightsCrc != modelWeightsCrc(source)) {
        io::recordRejection(obs, ErrorKind::Stale);
        throw ArtifactError(ErrorKind::Stale,
                            "loadQuantizedModelFor: " + path +
                                ": fingerprint does not match the "
                                "fp32 source model");
    }
    return q;
}

void
verifyQuantizedModelFile(const std::string &path,
                         const io::ArtifactLimits &limits)
{
    (void)loadValidated(path, limits);
}

} // namespace quant
} // namespace mflstm
