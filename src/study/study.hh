/**
 * @file
 * User-study simulation (Section VI-E). The paper recruits 30
 * participants, replays application outputs with scheme-dependent
 * response delays and accuracies, and collects 1-5 satisfaction scores
 * for four schemes: Baseline, AO, BPA and the user-oriented UO scheme
 * that tunes thresholds per participant. We substitute a parameterised
 * synthetic population: each user trades response delay against output
 * accuracy with their own sensitivities, plus rating noise.
 */

#ifndef MFLSTM_STUDY_STUDY_HH
#define MFLSTM_STUDY_STUDY_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/thresholds.hh"

namespace mflstm {
namespace study {

/** The four schemes compared in Fig. 18 (replay order is randomised). */
enum class Scheme { Baseline, Ao, Bpa, Uo };

const char *toString(Scheme s);

/** One synthetic participant. */
struct UserProfile
{
    /// satisfaction points gained per unit of relative delay reduction
    double delayReward = 1.6;
    /// satisfaction points lost per percent of accuracy loss
    double accuracyPenalty = 0.35;
    /// the accuracy floor the user would pick if asked (drives UO)
    double minAccuracy = 0.0;
    std::uint64_t seed = 0;
};

/** Draw a heterogeneous population (the paper's 30 campus recruits). */
std::vector<UserProfile> samplePopulation(std::size_t n,
                                          std::uint64_t seed,
                                          double baseline_accuracy);

/**
 * Satisfaction of one replay, 1..5: a neutral 3.0 baseline, plus the
 * delay reward relative to the baseline delay, minus the accuracy
 * penalty relative to the baseline accuracy, plus rating noise.
 */
double satisfactionScore(const UserProfile &user, double speedup,
                         double accuracy, double baseline_accuracy,
                         double noise);

/** Configuration of the replay program. */
struct ReplayConfig
{
    std::size_t users = 30;
    std::size_t replaysPerScheme = 25;  ///< 100 replays over 4 schemes
    /**
     * Unrated interactions before the UO scheme's rated replays: the
     * paper replays pre-produced outputs at the *selected* thresholds,
     * i.e. after its per-user tuning has already converged.
     */
    std::size_t uoWarmupReplays = 15;
    std::uint64_t seed = 2018;
    double ratingNoiseSigma = 0.35;
};

/** Mean satisfaction per scheme (the Fig. 18 bars). */
struct StudyResult
{
    std::array<double, 4> meanScore{};  // indexed by Scheme

    double score(Scheme s) const
    {
        return meanScore[static_cast<std::size_t>(s)];
    }
};

/**
 * Run the full study over an evaluated threshold ladder.
 *
 * @param points            the Fig. 19 trade-off points (speedup +
 *                          accuracy per threshold set, set 0 = baseline).
 * @param baseline_accuracy accuracy at threshold set 0.
 * @param ao_index/bpa_index the AO/BPA ladder positions.
 */
StudyResult runUserStudy(const std::vector<core::OperatingPoint> &points,
                         double baseline_accuracy, std::size_t ao_index,
                         std::size_t bpa_index,
                         const ReplayConfig &cfg = {});

} // namespace study
} // namespace mflstm

#endif // MFLSTM_STUDY_STUDY_HH
