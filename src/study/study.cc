#include "study/study.hh"

#include <algorithm>
#include <stdexcept>

#include "core/controller.hh"
#include "tensor/rng.hh"

namespace mflstm {
namespace study {

const char *
toString(Scheme s)
{
    switch (s) {
      case Scheme::Baseline:
        return "Baseline";
      case Scheme::Ao:
        return "AO";
      case Scheme::Bpa:
        return "BPA";
      case Scheme::Uo:
        return "UO";
    }
    return "?";
}

std::vector<UserProfile>
samplePopulation(std::size_t n, std::uint64_t seed,
                 double baseline_accuracy)
{
    tensor::Rng rng(seed);
    std::vector<UserProfile> users;
    users.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        UserProfile u;
        u.delayReward = rng.uniform(0.9f, 2.2f);
        // Most users notice accuracy loss well before 10%; a few are
        // tolerant, a few are strict — the paper's observation that
        // "most users are not willing to trade much accuracy".
        u.accuracyPenalty = rng.uniform(0.15f, 0.6f);
        // Personal accuracy floor between "2% loss is fine" and
        // "6% loss is fine", anchored to the app's baseline accuracy.
        const double tolerated_loss = rng.uniform(0.02f, 0.06f);
        u.minAccuracy = baseline_accuracy - tolerated_loss;
        u.seed = rng.engine()();
        users.push_back(u);
    }
    return users;
}

double
satisfactionScore(const UserProfile &user, double speedup, double accuracy,
                  double baseline_accuracy, double noise)
{
    // Relative delay reduction in [0, 1): 1 - 1/speedup.
    const double delay_gain =
        speedup >= 1.0 ? 1.0 - 1.0 / speedup : -(1.0 / speedup - 1.0);
    const double loss_pct =
        std::max(0.0, (baseline_accuracy - accuracy) * 100.0);

    const double raw = 3.0 + user.delayReward * delay_gain * 2.0 -
                       user.accuracyPenalty * loss_pct + noise;
    return std::clamp(raw, 1.0, 5.0);
}

StudyResult
runUserStudy(const std::vector<core::OperatingPoint> &points,
             double baseline_accuracy, std::size_t ao_index,
             std::size_t bpa_index, const ReplayConfig &cfg)
{
    if (points.empty())
        throw std::invalid_argument("runUserStudy: no points");
    if (ao_index >= points.size() || bpa_index >= points.size())
        throw std::out_of_range("runUserStudy: bad scheme index");

    const std::vector<UserProfile> users =
        samplePopulation(cfg.users, cfg.seed, baseline_accuracy);

    StudyResult result;
    std::array<double, 4> sums{};
    std::array<std::size_t, 4> counts{};

    // The ladder the UO controller walks (thresholds per rung).
    std::vector<core::ThresholdSet> ladder;
    ladder.reserve(points.size());
    for (const core::OperatingPoint &pt : points)
        ladder.push_back(pt.set);

    for (const UserProfile &user : users) {
        tensor::Rng noise_rng(user.seed);

        for (std::size_t s = 0; s < 4; ++s) {
            const auto scheme = static_cast<Scheme>(s);

            // UO runs the online feedback controller across this
            // user's replays ("dynamically adjusts the thresholds...
            // taking each individual user's preferences as the user
            // input"). The preference the user reports is the accuracy
            // level they actually like best — the noise-free
            // satisfaction optimum over the curve — and the controller
            // walks the ladder toward it online.
            double preferred = user.minAccuracy;
            double best_sat = -1.0;
            for (const core::OperatingPoint &pt : points) {
                const double sat = satisfactionScore(
                    user, pt.speedup, pt.accuracy, baseline_accuracy,
                    0.0);
                if (sat > best_sat) {
                    best_sat = sat;
                    preferred = pt.accuracy;
                }
            }
            // The stated preference seeds the starting rung; the
            // controller then only fine-tunes online (25 replays are
            // far too few to explore the ladder from scratch).
            core::ControllerConfig ctrl_cfg;
            ctrl_cfg.climbMargin = 0.002;
            // Deadband below the preference: a single noisy rating
            // must not bounce the operating point off the optimum.
            ctrl_cfg.backoffMargin = 0.004;
            ctrl_cfg.initialIndex =
                core::selectForPreference(points, preferred);
            core::UserOrientedController controller(
                ladder, preferred, ctrl_cfg);

            if (scheme == Scheme::Uo) {
                // Unrated warm-up: the controller converges before the
                // rated replays begin.
                for (std::size_t r = 0; r < cfg.uoWarmupReplays; ++r) {
                    controller.observe(
                        points[controller.currentIndex()].accuracy);
                }
            }

            for (std::size_t r = 0; r < cfg.replaysPerScheme; ++r) {
                std::size_t idx;
                switch (scheme) {
                  case Scheme::Baseline:
                    idx = 0;
                    break;
                  case Scheme::Ao:
                    idx = ao_index;
                    break;
                  case Scheme::Bpa:
                    idx = bpa_index;
                    break;
                  case Scheme::Uo:
                  default:
                    idx = controller.currentIndex();
                    break;
                }
                const core::OperatingPoint &pt = points[idx];

                const double noise = noise_rng.normal(
                    0.0f, static_cast<float>(cfg.ratingNoiseSigma));
                sums[s] += satisfactionScore(user, pt.speedup,
                                             pt.accuracy,
                                             baseline_accuracy, noise);
                ++counts[s];

                if (scheme == Scheme::Uo) {
                    // Fig. 10 op 3: the adjustment input is the
                    // *measured* output accuracy vs the preference.
                    controller.observe(pt.accuracy);
                }
            }
        }
    }

    for (std::size_t s = 0; s < 4; ++s)
        result.meanScore[s] =
            counts[s] ? sums[s] / static_cast<double>(counts[s]) : 0.0;
    return result;
}

} // namespace study
} // namespace mflstm
