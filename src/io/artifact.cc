#include "io/artifact.hh"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "obs/observer.hh"

namespace mflstm {
namespace io {

namespace {

constexpr std::uint32_t kMagic = fourcc('M', 'F', 'L', 'A');
constexpr std::uint32_t kContainerVersion = 1;
constexpr std::size_t kHeaderBytes = 32;   ///< fixed header size
constexpr std::size_t kHeaderCrcAt = 28;   ///< headerCrc field offset
constexpr std::size_t kChunkEntryBytes = 24;

[[noreturn]] void
fail(ErrorKind kind, const std::string &message)
{
    throw ArtifactError(kind, message);
}

std::uint32_t
loadU32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
loadU64(const std::uint8_t *p)
{
    return static_cast<std::uint64_t>(loadU32(p)) |
           static_cast<std::uint64_t>(loadU32(p + 4)) << 32;
}

void
storeU32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

void
storeU64(std::uint8_t *p, std::uint64_t v)
{
    storeU32(p, static_cast<std::uint32_t>(v));
    storeU32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

} // anonymous namespace

std::uint32_t
crc32(const void *data, std::size_t n, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();

    std::uint32_t c = seed ^ 0xffffffffu;
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

const char *
toString(ErrorKind kind)
{
    switch (kind) {
    case ErrorKind::Io: return "io_error";
    case ErrorKind::BadMagic: return "bad_magic";
    case ErrorKind::BadVersion: return "bad_version";
    case ErrorKind::BadSchema: return "bad_schema";
    case ErrorKind::BadHeader: return "bad_header";
    case ErrorKind::Truncated: return "truncated";
    case ErrorKind::ChecksumMismatch: return "checksum_mismatch";
    case ErrorKind::LimitExceeded: return "limit_exceeded";
    case ErrorKind::NonFinite: return "non_finite";
    case ErrorKind::Malformed: return "malformed";
    case ErrorKind::Stale: return "stale";
    }
    return "unknown";
}

std::uint32_t
indexedTag(char a, char b, std::size_t index)
{
    if (index > 0xffff)
        fail(ErrorKind::LimitExceeded,
             "indexedTag: index " + std::to_string(index) +
                 " does not fit in 16 bits");
    return fourcc(a, b, static_cast<char>(index & 0xff),
                  static_cast<char>((index >> 8) & 0xff));
}

std::uint64_t
checkedMul(std::uint64_t a, std::uint64_t b, const char *what)
{
    if (a != 0 && b > UINT64_MAX / a)
        fail(ErrorKind::LimitExceeded,
             std::string(what) + ": size multiplication overflows");
    return a * b;
}

std::uint64_t
checkedAdd(std::uint64_t a, std::uint64_t b, const char *what)
{
    if (b > UINT64_MAX - a)
        fail(ErrorKind::LimitExceeded,
             std::string(what) + ": size addition overflows");
    return a + b;
}

// --- ByteWriter ---------------------------------------------------------

void
ByteWriter::raw(const void *p, std::size_t n)
{
    const auto *b = static_cast<const std::uint8_t *>(p);
    bytes_.insert(bytes_.end(), b, b + n);
}

void
ByteWriter::u32(std::uint32_t v)
{
    std::uint8_t b[4];
    storeU32(b, v);
    raw(b, sizeof(b));
}

void
ByteWriter::u64(std::uint64_t v)
{
    std::uint8_t b[8];
    storeU64(b, v);
    raw(b, sizeof(b));
}

void
ByteWriter::f32(float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u32(bits);
}

void
ByteWriter::f64(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
ByteWriter::f32Array(std::span<const float> v)
{
    u64(v.size());
    for (float x : v)
        f32(x);
}

void
ByteWriter::f64Array(std::span<const double> v)
{
    u64(v.size());
    for (double x : v)
        f64(x);
}

void
ByteWriter::u64Array(std::span<const std::uint64_t> v)
{
    u64(v.size());
    for (std::uint64_t x : v)
        u64(x);
}

void
ByteWriter::u8Array(std::span<const std::int8_t> v)
{
    u64(v.size());
    raw(v.data(), v.size());
}

// --- ByteReader ---------------------------------------------------------

ByteReader::ByteReader(std::span<const std::uint8_t> data,
                       std::string context, std::uint64_t max_elements)
    : data_(data), context_(std::move(context)),
      maxElements_(max_elements)
{}

void
ByteReader::need(std::size_t n) const
{
    if (n > remaining())
        fail(ErrorKind::Truncated,
             context_ + ": need " + std::to_string(n) +
                 " bytes, have " + std::to_string(remaining()));
}

std::uint32_t
ByteReader::u32()
{
    need(4);
    const std::uint32_t v = loadU32(data_.data() + pos_);
    pos_ += 4;
    return v;
}

std::uint64_t
ByteReader::u64()
{
    need(8);
    const std::uint64_t v = loadU64(data_.data() + pos_);
    pos_ += 8;
    return v;
}

float
ByteReader::f32()
{
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

double
ByteReader::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::uint64_t
ByteReader::arrayCount(std::size_t elem_size)
{
    const std::uint64_t count = u64();
    if (count > maxElements_)
        fail(ErrorKind::LimitExceeded,
             context_ + ": array of " + std::to_string(count) +
                 " elements exceeds the limit of " +
                 std::to_string(maxElements_));
    // Validate against the bytes actually present BEFORE allocating.
    const std::uint64_t bytes =
        checkedMul(count, elem_size, context_.c_str());
    if (bytes > remaining())
        fail(ErrorKind::Truncated,
             context_ + ": array of " + std::to_string(count) +
                 " elements extends past the chunk payload");
    return count;
}

std::vector<float>
ByteReader::f32Array()
{
    const std::uint64_t count = arrayCount(4);
    std::vector<float> v(static_cast<std::size_t>(count));
    for (auto &x : v)
        x = f32();
    return v;
}

std::vector<double>
ByteReader::f64Array()
{
    const std::uint64_t count = arrayCount(8);
    std::vector<double> v(static_cast<std::size_t>(count));
    for (auto &x : v)
        x = f64();
    return v;
}

std::vector<std::uint64_t>
ByteReader::u64Array()
{
    const std::uint64_t count = arrayCount(8);
    std::vector<std::uint64_t> v(static_cast<std::size_t>(count));
    for (auto &x : v)
        x = u64();
    return v;
}

std::vector<std::int8_t>
ByteReader::u8Array()
{
    const std::uint64_t count = arrayCount(1);
    std::vector<std::int8_t> v(static_cast<std::size_t>(count));
    need(static_cast<std::size_t>(count));
    std::memcpy(v.data(), data_.data() + pos_,
                static_cast<std::size_t>(count));
    pos_ += static_cast<std::size_t>(count);
    return v;
}

void
ByteReader::expectEnd() const
{
    if (remaining() != 0)
        fail(ErrorKind::Malformed,
             context_ + ": " + std::to_string(remaining()) +
                 " trailing bytes after the last field");
}

// --- ArtifactWriter -----------------------------------------------------

ArtifactWriter::ArtifactWriter(std::uint32_t schema_kind,
                               std::uint32_t schema_version)
    : schemaKind_(schema_kind), schemaVersion_(schema_version)
{}

ByteWriter &
ArtifactWriter::chunk(std::uint32_t tag)
{
    for (const auto &[t, w] : chunks_)
        if (t == tag)
            fail(ErrorKind::Malformed,
                 "ArtifactWriter: duplicate chunk tag");
    chunks_.emplace_back(tag, ByteWriter{});
    return chunks_.back().second;
}

std::vector<std::uint8_t>
ArtifactWriter::serialize() const
{
    const std::size_t table_end =
        kHeaderBytes + kChunkEntryBytes * chunks_.size();
    std::size_t total = table_end;
    for (const auto &[tag, w] : chunks_)
        total += w.bytes().size();

    std::vector<std::uint8_t> out(total);

    // Header (headerCrc patched below).
    storeU32(out.data() + 0, kMagic);
    storeU32(out.data() + 4, kContainerVersion);
    storeU32(out.data() + 8, schemaKind_);
    storeU32(out.data() + 12, schemaVersion_);
    storeU64(out.data() + 16, total);
    storeU32(out.data() + 24,
             static_cast<std::uint32_t>(chunks_.size()));

    // Chunk table + payloads.
    std::size_t offset = table_end;
    for (std::size_t i = 0; i < chunks_.size(); ++i) {
        const auto &[tag, w] = chunks_[i];
        std::uint8_t *entry =
            out.data() + kHeaderBytes + kChunkEntryBytes * i;
        storeU32(entry + 0, tag);
        storeU32(entry + 4,
                 crc32(w.bytes().data(), w.bytes().size()));
        storeU64(entry + 8, offset);
        storeU64(entry + 16, w.bytes().size());
        std::copy(w.bytes().begin(), w.bytes().end(),
                  out.begin() + static_cast<std::ptrdiff_t>(offset));
        offset += w.bytes().size();
    }

    // headerCrc covers the header prefix and the whole chunk table, so
    // a bit flip anywhere in the metadata is caught before any entry
    // is trusted.
    std::uint32_t hcrc = crc32(out.data(), kHeaderCrcAt);
    hcrc = crc32(out.data() + kHeaderBytes, table_end - kHeaderBytes,
                 hcrc);
    storeU32(out.data() + kHeaderCrcAt, hcrc);
    return out;
}

void
ArtifactWriter::commit(const std::string &path) const
{
    const std::vector<std::uint8_t> bytes = serialize();
    atomicWriteFile(path, bytes);
}

// --- ArtifactReader -----------------------------------------------------

ArtifactReader::ArtifactReader(const std::string &path,
                               std::uint32_t expect_schema_kind,
                               const ArtifactLimits &limits)
    : path_(path), limits_(limits)
{
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    if (ec)
        fail(ErrorKind::Io, "artifact: cannot stat " + path + ": " +
                                ec.message());
    if (size > limits_.maxFileBytes)
        fail(ErrorKind::LimitExceeded,
             "artifact: " + path + " is " + std::to_string(size) +
                 " bytes, over the " +
                 std::to_string(limits_.maxFileBytes) + " byte limit");

    std::ifstream is(path, std::ios::binary);
    if (!is)
        fail(ErrorKind::Io, "artifact: cannot open " + path);
    bytes_.resize(static_cast<std::size_t>(size));
    is.read(reinterpret_cast<char *>(bytes_.data()),
            static_cast<std::streamsize>(bytes_.size()));
    if (!is || static_cast<std::uintmax_t>(is.gcount()) != size)
        fail(ErrorKind::Io, "artifact: short read on " + path);

    if (bytes_.size() < kHeaderBytes)
        fail(ErrorKind::Truncated,
             "artifact: " + path + " is smaller than the header");
    if (loadU32(bytes_.data()) != kMagic)
        fail(ErrorKind::BadMagic, "artifact: bad magic in " + path);
    if (loadU32(bytes_.data() + 4) != kContainerVersion)
        fail(ErrorKind::BadVersion,
             "artifact: unsupported container version " +
                 std::to_string(loadU32(bytes_.data() + 4)) + " in " +
                 path);

    schemaKind_ = loadU32(bytes_.data() + 8);
    schemaVersion_ = loadU32(bytes_.data() + 12);
    const std::uint64_t declared_size = loadU64(bytes_.data() + 16);
    const std::uint32_t chunk_count = loadU32(bytes_.data() + 24);

    if (declared_size != bytes_.size())
        fail(ErrorKind::BadHeader,
             "artifact: " + path + " declares " +
                 std::to_string(declared_size) + " bytes but holds " +
                 std::to_string(bytes_.size()));
    if (chunk_count > limits_.maxChunks)
        fail(ErrorKind::LimitExceeded,
             "artifact: " + path + " declares " +
                 std::to_string(chunk_count) + " chunks, over the " +
                 std::to_string(limits_.maxChunks) + " chunk limit");

    const std::uint64_t table_end = checkedAdd(
        kHeaderBytes,
        checkedMul(kChunkEntryBytes, chunk_count, "artifact table"),
        "artifact table");
    if (table_end > bytes_.size())
        fail(ErrorKind::Truncated,
             "artifact: chunk table of " + path +
                 " extends past the end of the file");

    // Metadata integrity before trusting any table entry.
    std::uint32_t hcrc = crc32(bytes_.data(), kHeaderCrcAt);
    hcrc = crc32(bytes_.data() + kHeaderBytes,
                 static_cast<std::size_t>(table_end) - kHeaderBytes,
                 hcrc);
    if (hcrc != loadU32(bytes_.data() + kHeaderCrcAt))
        fail(ErrorKind::ChecksumMismatch,
             "artifact: header/table checksum mismatch in " + path);

    if (expect_schema_kind != 0 && schemaKind_ != expect_schema_kind)
        fail(ErrorKind::BadSchema,
             "artifact: " + path + " holds schema kind " +
                 std::to_string(schemaKind_) + ", expected " +
                 std::to_string(expect_schema_kind));

    chunks_.reserve(chunk_count);
    for (std::uint32_t i = 0; i < chunk_count; ++i) {
        const std::uint8_t *entry =
            bytes_.data() + kHeaderBytes + kChunkEntryBytes * i;
        ChunkInfo info;
        info.tag = loadU32(entry + 0);
        info.crc = loadU32(entry + 4);
        info.offset = loadU64(entry + 8);
        info.length = loadU64(entry + 16);

        if (info.length > limits_.maxChunkBytes)
            fail(ErrorKind::LimitExceeded,
                 "artifact: chunk " + std::to_string(i) + " of " +
                     path + " declares " +
                     std::to_string(info.length) + " bytes");
        if (info.offset < table_end ||
            checkedAdd(info.offset, info.length, "artifact chunk") >
                bytes_.size())
            fail(ErrorKind::Truncated,
                 "artifact: chunk " + std::to_string(i) + " of " +
                     path + " extends past the end of the file");
        for (const ChunkInfo &prev : chunks_)
            if (prev.tag == info.tag)
                fail(ErrorKind::Malformed,
                     "artifact: duplicate chunk tag in " + path);

        if (crc32(bytes_.data() + info.offset,
                  static_cast<std::size_t>(info.length)) != info.crc)
            fail(ErrorKind::ChecksumMismatch,
                 "artifact: chunk " + std::to_string(i) + " of " +
                     path + " fails its CRC check");
        chunks_.push_back(info);
    }
}

bool
ArtifactReader::has(std::uint32_t tag) const
{
    for (const ChunkInfo &c : chunks_)
        if (c.tag == tag)
            return true;
    return false;
}

ByteReader
ArtifactReader::chunk(std::uint32_t tag) const
{
    for (const ChunkInfo &c : chunks_) {
        if (c.tag == tag) {
            return ByteReader(
                {bytes_.data() + c.offset,
                 static_cast<std::size_t>(c.length)},
                path_ + ": chunk " + std::to_string(tag),
                limits_.maxElements);
        }
    }
    fail(ErrorKind::Malformed, "artifact: " + path_ +
                                   " is missing required chunk " +
                                   std::to_string(tag));
}

// --- filesystem helpers -------------------------------------------------

void
atomicWriteFile(const std::string &path,
                std::span<const std::uint8_t> bytes)
{
    namespace fs = std::filesystem;
    const fs::path target(path);
    fs::path dir = target.parent_path();
    if (dir.empty())
        dir = ".";

    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0)
        fail(ErrorKind::Io, "atomicWriteFile: cannot create " + tmp +
                                ": " + std::strerror(errno));

    std::size_t written = 0;
    while (written < bytes.size()) {
        const ssize_t n = ::write(fd, bytes.data() + written,
                                  bytes.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            fail(ErrorKind::Io, "atomicWriteFile: write to " + tmp +
                                    " failed: " + std::strerror(err));
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        const int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        fail(ErrorKind::Io, "atomicWriteFile: fsync of " + tmp +
                                " failed: " + std::strerror(err));
    }
    ::close(fd);

    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        fail(ErrorKind::Io, "atomicWriteFile: rename to " + path +
                                " failed: " + std::strerror(err));
    }

    // Persist the directory entry; failure here is not fatal to the
    // data (the rename is already durable-or-absent).
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

std::string
quarantine(const std::string &path) noexcept
{
    namespace fs = std::filesystem;
    std::error_code ec;
    std::string dest = path + ".corrupt";
    for (int i = 1; fs::exists(dest, ec) && i < 100; ++i)
        dest = path + ".corrupt." + std::to_string(i);
    fs::rename(path, dest, ec);
    return ec ? std::string() : dest;
}

bool
isArtifactFile(const std::string &path, std::uint32_t *schema_kind)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::uint8_t head[12];
    is.read(reinterpret_cast<char *>(head), sizeof(head));
    if (!is || loadU32(head) != kMagic)
        return false;
    if (schema_kind)
        *schema_kind = loadU32(head + 8);
    return true;
}

void
recordRejection(obs::Observer *obs, ErrorKind kind)
{
    if (!obs)
        return;
    obs->metrics().counter("artifact_load_rejected_total").add();
    obs->metrics()
        .counter(std::string("artifact_load_rejected_total{reason=") +
                 toString(kind) + "}")
        .add();
}

} // namespace io
} // namespace mflstm
