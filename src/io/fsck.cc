#include "io/fsck.hh"

#include <algorithm>
#include <filesystem>

namespace mflstm {
namespace io {

namespace {

const char *
schemaName(std::uint32_t kind)
{
    switch (kind) {
    case kSchemaModel: return "container/model";
    case kSchemaCalibration: return "container/calibration";
    case kSchemaEngineState: return "container/engine-state";
    case kSchemaQuantModel: return "container/quant-model";
    case kSchemaTunedPlan: return "container/tuned-plan";
    default: return "container/unknown-schema";
    }
}

bool
isResidue(const std::string &name)
{
    return name.find(".corrupt") != std::string::npos ||
           name.find(".tmp.") != std::string::npos;
}

} // anonymous namespace

std::size_t
FsckReport::corruptCount() const
{
    return static_cast<std::size_t>(
        std::count_if(entries.begin(), entries.end(),
                      [](const FsckEntry &e) { return !e.ok; }));
}

FsckEntry
fsckFile(const std::string &path, const ArtifactLimits &limits,
         const DeepVerifier &deep)
{
    FsckEntry entry;
    entry.path = path;

    std::uint32_t schema = 0;
    if (isArtifactFile(path, &schema)) {
        entry.format = schemaName(schema);
        try {
            const ArtifactReader reader(path, /*any schema*/ 0, limits);
            entry.chunks = reader.chunks().size();
            if (deep)
                deep(path, reader.schemaKind());
            entry.ok = true;
        } catch (const ArtifactError &e) {
            entry.detail = e.what();
            entry.kind = e.kind();
        } catch (const std::exception &e) {
            entry.detail = e.what();
            entry.kind = ErrorKind::Malformed;
        }
        return entry;
    }

    // Not a container: hand it to the deep verifier (legacy formats),
    // or reject when there is none to claim it.
    if (deep) {
        try {
            deep(path, 0);
            entry.format = "legacy";
            entry.ok = true;
        } catch (const ArtifactError &e) {
            entry.detail = e.what();
            entry.kind = e.kind();
        } catch (const std::exception &e) {
            entry.detail = e.what();
            entry.kind = ErrorKind::Malformed;
        }
    } else {
        entry.detail = "not an artifact container";
        entry.kind = ErrorKind::BadMagic;
    }
    return entry;
}

FsckReport
fsckDirectory(const std::string &dir, const ArtifactLimits &limits,
              const DeepVerifier &deep)
{
    namespace fs = std::filesystem;
    FsckReport report;

    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec)
        return report;

    std::vector<std::string> paths;
    for (const fs::directory_entry &e : it)
        if (e.is_regular_file(ec))
            paths.push_back(e.path().string());
    std::sort(paths.begin(), paths.end());

    for (const std::string &path : paths) {
        const std::string name = fs::path(path).filename().string();
        if (isResidue(name)) {
            FsckEntry skipped;
            skipped.path = path;
            skipped.format = "skipped";
            skipped.ok = true;
            skipped.detail = "quarantine/temp residue";
            report.entries.push_back(std::move(skipped));
            continue;
        }
        report.entries.push_back(fsckFile(path, limits, deep));
    }
    return report;
}

} // namespace io
} // namespace mflstm
