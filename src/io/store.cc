#include "io/store.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <unistd.h>

namespace mflstm {
namespace io {

namespace fs = std::filesystem;

namespace {

constexpr const char *kLockSuffix = ".lock";

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

} // anonymous namespace

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        throw ArtifactError(ErrorKind::Malformed,
                            "ArtifactStore: empty directory");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_))
        throw ArtifactError(ErrorKind::Io,
                            "ArtifactStore: cannot create directory " +
                                dir_ + ": " + ec.message());
}

std::string
ArtifactStore::path(const std::string &name) const
{
    if (name.empty() || name.find('/') != std::string::npos ||
        name.find("..") != std::string::npos)
        throw ArtifactError(ErrorKind::Malformed,
                            "ArtifactStore: bad artifact name \"" +
                                name + "\"");
    return dir_ + "/" + name;
}

bool
ArtifactStore::exists(const std::string &name) const
{
    std::error_code ec;
    return fs::is_regular_file(path(name), ec);
}

std::vector<std::string>
ArtifactStore::list() const
{
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (endsWith(name, kLockSuffix) ||
            name.find(".corrupt") != std::string::npos)
            continue;
        names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

std::string
ArtifactStore::lockPath(const std::string &name) const
{
    return path(name) + kLockSuffix;
}

ArtifactStore::WriteLock::WriteLock(std::string lock_path)
    : lockPath_(std::move(lock_path))
{}

ArtifactStore::WriteLock::WriteLock(WriteLock &&o) noexcept
    : lockPath_(std::move(o.lockPath_))
{
    o.lockPath_.clear();
}

ArtifactStore::WriteLock &
ArtifactStore::WriteLock::operator=(WriteLock &&o) noexcept
{
    if (this != &o) {
        if (!lockPath_.empty())
            ::unlink(lockPath_.c_str());
        lockPath_ = std::move(o.lockPath_);
        o.lockPath_.clear();
    }
    return *this;
}

ArtifactStore::WriteLock::~WriteLock()
{
    if (!lockPath_.empty())
        ::unlink(lockPath_.c_str());
}

ArtifactStore::WriteLock
ArtifactStore::lockForWrite(const std::string &name) const
{
    const std::string lock = lockPath(name);
    // O_EXCL makes create-if-absent atomic: exactly one contender
    // gets the fd, everyone else sees EEXIST.
    const int fd =
        ::open(lock.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) {
        const int err = errno;
        throw ArtifactError(
            ErrorKind::Io,
            err == EEXIST
                ? "ArtifactStore: \"" + name +
                      "\" is locked by another writer (" + lock + ")"
                : "ArtifactStore: cannot create lock " + lock + ": " +
                      std::strerror(err));
    }
    ::close(fd);
    return WriteLock(lock);
}

bool
ArtifactStore::locked(const std::string &name) const
{
    std::error_code ec;
    return fs::exists(lockPath(name), ec);
}

bool
ArtifactStore::breakLock(const std::string &name) const
{
    return ::unlink(lockPath(name).c_str()) == 0;
}

} // namespace io
} // namespace mflstm
