/**
 * @file
 * Crash-safe artifact container (DESIGN.md §11). Every persisted
 * artifact of the system — cached accuracy models, calibration results,
 * serving-engine warm-start state — is stored in one chunked, versioned,
 * CRC32-checksummed file format:
 *
 *   [FileHeader][ChunkTable][payload ...]
 *
 * The header carries the container version, a schema kind/version pair
 * identifying what the payload means, the total file size and a CRC
 * over header + chunk table; every chunk table entry carries a CRC over
 * its payload. Readers parse with strict bounds checks: every declared
 * size is validated against configurable ArtifactLimits and against the
 * actual file size *before* any allocation, so a corrupt or adversarial
 * header can neither OOM the process nor index out of bounds.
 *
 * Writes are atomic: the container is serialized in memory, written to
 * a temp file in the destination directory, fsync'd, and renamed over
 * the target, so a crash at any point leaves either the old file or the
 * new one — never a partial artifact.
 *
 * Failures are typed (ArtifactError::Kind); callers implement the
 * recovery policy (quarantine + recompute) rather than aborting.
 */

#ifndef MFLSTM_IO_ARTIFACT_HH
#define MFLSTM_IO_ARTIFACT_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace mflstm {
namespace obs {
class Observer;
} // namespace obs

namespace io {

/** CRC-32 (IEEE 802.3, the zlib polynomial) of @p n bytes. */
std::uint32_t crc32(const void *data, std::size_t n,
                    std::uint32_t seed = 0);

/** Why an artifact was rejected (the quarantine/metrics reason label). */
enum class ErrorKind {
    Io,                ///< open/read/write/rename failed
    BadMagic,          ///< not an artifact file at all
    BadVersion,        ///< container version newer than this reader
    BadSchema,         ///< schema kind does not match the expectation
    BadHeader,         ///< header fields inconsistent with the file
    Truncated,         ///< declared data extends past the bytes present
    ChecksumMismatch,  ///< stored CRC does not match the bytes
    LimitExceeded,     ///< a declared size is over ArtifactLimits
    NonFinite,         ///< payload tensors contain NaN/Inf
    Malformed,         ///< chunk/field structure is wrong
    Stale,             ///< valid file, but for a different model/config
};

/** Stable lower-snake reason label (metrics, fsck output). */
const char *toString(ErrorKind kind);

/** Typed artifact failure; every loader throws exactly this. */
class ArtifactError : public std::runtime_error
{
  public:
    ArtifactError(ErrorKind kind, const std::string &message)
        : std::runtime_error(message), kind_(kind)
    {}

    ErrorKind kind() const { return kind_; }

  private:
    ErrorKind kind_;
};

/**
 * Parser limits, checked before any allocation. The defaults are far
 * above anything the repo writes but far below anything that could
 * OOM; tests tighten them to exercise the rejection paths.
 */
struct ArtifactLimits
{
    std::uint64_t maxFileBytes = 1ull << 30;   ///< whole-file cap (1 GiB)
    std::uint64_t maxChunkBytes = 1ull << 30;  ///< per-chunk cap
    std::uint32_t maxChunks = 4096;
    std::uint64_t maxDim = 1ull << 24;         ///< any single dimension
    std::uint64_t maxElements = 1ull << 28;    ///< any one array/tensor
};

/** Schema kinds carried by the container (what the chunks mean). */
constexpr std::uint32_t kSchemaModel = 1;        ///< nn::LstmModel
constexpr std::uint32_t kSchemaCalibration = 2;  ///< core calibration
constexpr std::uint32_t kSchemaEngineState = 3;  ///< serve warm state
constexpr std::uint32_t kSchemaQuantModel = 4;   ///< quant::QuantizedModel
constexpr std::uint32_t kSchemaTunedPlan = 5;    ///< sched tuned plan

/** Four-character chunk/file tag as a little-endian u32. */
constexpr std::uint32_t
fourcc(char a, char b, char c, char d)
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

/**
 * Indexed chunk tag: two tag characters plus a 16-bit index, for
 * per-layer chunks ("LY" 0, "LY" 1, ...). Throws LimitExceeded when
 * @p index does not fit.
 */
std::uint32_t indexedTag(char a, char b, std::size_t index);

/** a * b, throwing ArtifactError(LimitExceeded) on u64 overflow. */
std::uint64_t checkedMul(std::uint64_t a, std::uint64_t b,
                         const char *what);

/** a + b, throwing ArtifactError(LimitExceeded) on u64 overflow. */
std::uint64_t checkedAdd(std::uint64_t a, std::uint64_t b,
                         const char *what);

/** Little-endian append-only buffer for chunk payloads. */
class ByteWriter
{
  public:
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f32(float v);
    void f64(double v);
    /** u64 count followed by the raw values. */
    void f32Array(std::span<const float> v);
    void f64Array(std::span<const double> v);
    void u64Array(std::span<const std::uint64_t> v);
    /** u64 count followed by the raw bytes (quantized weight payloads). */
    void u8Array(std::span<const std::int8_t> v);

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    void raw(const void *p, std::size_t n);

    std::vector<std::uint8_t> bytes_;
};

/**
 * Bounds-checked little-endian cursor over one chunk's payload. Every
 * read validates the bytes are present (Truncated otherwise); array
 * reads validate the declared count against the remaining bytes and
 * ArtifactLimits::maxElements *before* allocating.
 */
class ByteReader
{
  public:
    ByteReader(std::span<const std::uint8_t> data, std::string context,
               std::uint64_t max_elements);

    std::uint32_t u32();
    std::uint64_t u64();
    float f32();
    double f64();
    std::vector<float> f32Array();
    std::vector<double> f64Array();
    std::vector<std::uint64_t> u64Array();
    std::vector<std::int8_t> u8Array();

    std::size_t remaining() const { return data_.size() - pos_; }

    /** Throws Malformed unless every byte has been consumed. */
    void expectEnd() const;

  private:
    void need(std::size_t n) const;
    std::uint64_t arrayCount(std::size_t elem_size);

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
    std::string context_;
    std::uint64_t maxElements_;
};

/** Builds a container in memory and commits it atomically. */
class ArtifactWriter
{
  public:
    ArtifactWriter(std::uint32_t schema_kind,
                   std::uint32_t schema_version);

    /** Start a new chunk; returns the payload writer. Tags are unique. */
    ByteWriter &chunk(std::uint32_t tag);

    /** Serialize the container. */
    std::vector<std::uint8_t> serialize() const;

    /** serialize() + atomic write (temp + fsync + rename) to @p path. */
    void commit(const std::string &path) const;

  private:
    std::uint32_t schemaKind_;
    std::uint32_t schemaVersion_;
    std::vector<std::pair<std::uint32_t, ByteWriter>> chunks_;
};

/** One validated chunk-table entry. */
struct ChunkInfo
{
    std::uint32_t tag = 0;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::uint32_t crc = 0;
};

/**
 * Opens, fully validates (header, chunk table bounds, every chunk CRC)
 * and holds one container. All validation happens in the constructor;
 * chunk() afterwards only hands out bounds-checked readers.
 */
class ArtifactReader
{
  public:
    /**
     * @throws ArtifactError on any I/O, structural or checksum problem.
     * @param expect_schema_kind 0 accepts any schema (fsck).
     */
    ArtifactReader(const std::string &path,
                   std::uint32_t expect_schema_kind,
                   const ArtifactLimits &limits = {});

    std::uint32_t schemaKind() const { return schemaKind_; }
    std::uint32_t schemaVersion() const { return schemaVersion_; }
    const std::vector<ChunkInfo> &chunks() const { return chunks_; }

    bool has(std::uint32_t tag) const;

    /** Payload reader for @p tag; throws Malformed when missing. */
    ByteReader chunk(std::uint32_t tag) const;

  private:
    std::string path_;
    ArtifactLimits limits_;
    std::uint32_t schemaKind_ = 0;
    std::uint32_t schemaVersion_ = 0;
    std::vector<ChunkInfo> chunks_;
    std::vector<std::uint8_t> bytes_;
};

/**
 * Atomic file replacement: write to a temp file in @p path's directory,
 * fsync, rename over @p path, fsync the directory. A crash at any point
 * leaves the previous file (or nothing), never a partial write.
 */
void atomicWriteFile(const std::string &path,
                     std::span<const std::uint8_t> bytes);

/**
 * Move a rejected artifact out of the way: rename @p path to
 * "<path>.corrupt" (or ".corrupt.N" when taken). Best-effort — returns
 * the quarantine path, or "" when the rename failed; never throws.
 */
std::string quarantine(const std::string &path) noexcept;

/** Does @p path start with the container magic? (No validation.) */
bool isArtifactFile(const std::string &path,
                    std::uint32_t *schema_kind = nullptr);

/**
 * Bump the artifact rejection counters on @p obs (no-op when null):
 * artifact_load_rejected_total and its per-reason sibling
 * artifact_load_rejected_total{reason=<kind>}.
 */
void recordRejection(obs::Observer *obs, ErrorKind kind);

} // namespace io
} // namespace mflstm

#endif // MFLSTM_IO_ARTIFACT_HH
