/**
 * @file
 * Artifact cache verification (the engine behind `mflstm fsck`).
 * Container-level checks live here (header, chunk table, every CRC);
 * schema-aware deep verification (actually decoding a model or a
 * calibration) is layered on top by the caller through a DeepVerifier,
 * keeping src/io independent of the domain libraries.
 */

#ifndef MFLSTM_IO_FSCK_HH
#define MFLSTM_IO_FSCK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "io/artifact.hh"

namespace mflstm {
namespace io {

/** Verification outcome for one file. */
struct FsckEntry
{
    std::string path;
    /// "container/<schema>", "legacy", or "unknown"
    std::string format = "unknown";
    bool ok = false;
    /// chunk count for containers (diagnostic)
    std::size_t chunks = 0;
    /// rejection reason when !ok
    std::string detail;
    /// typed reason when !ok (metrics label)
    ErrorKind kind = ErrorKind::Malformed;
};

/** Verification outcome for a whole cache directory. */
struct FsckReport
{
    std::vector<FsckEntry> entries;

    std::size_t corruptCount() const;
    bool allOk() const { return corruptCount() == 0; }
};

/**
 * Schema-aware deep check invoked after the container (or legacy file)
 * structure validated. Receives the file path and its detected schema
 * kind (0 for non-container files); throws ArtifactError (or any
 * std::exception) to report corruption. May ignore unknown schemas.
 */
using DeepVerifier =
    std::function<void(const std::string &path, std::uint32_t schema)>;

/**
 * Verify one file: container structure + every chunk CRC, then the
 * optional @p deep check. Files without the container magic are
 * classified "unknown" and passed to @p deep with schema 0 (so a
 * legacy-format loader can claim them); without a deep verifier they
 * report ok=false with BadMagic.
 */
FsckEntry fsckFile(const std::string &path,
                   const ArtifactLimits &limits = {},
                   const DeepVerifier &deep = nullptr);

/**
 * fsckFile over every regular file in @p dir (non-recursive, skipping
 * `.corrupt` quarantine leftovers and `.tmp.*` atomic-write residue,
 * which are reported as skipped entries with ok=true). A missing
 * directory yields an empty report.
 */
FsckReport fsckDirectory(const std::string &dir,
                         const ArtifactLimits &limits = {},
                         const DeepVerifier &deep = nullptr);

} // namespace io
} // namespace mflstm

#endif // MFLSTM_IO_FSCK_HH
