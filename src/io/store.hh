/**
 * @file
 * Shared model-artifact store (DESIGN.md §16): one directory of named
 * artifact-container files shared by every engine replica in a fleet.
 * Readers open freely (the containers are self-validating, §11);
 * writers must hold the per-artifact single-writer lock so two
 * replicas recovering at once cannot interleave a save.
 *
 * The lock is a sidecar file `<name>.lock` created with
 * O_CREAT|O_EXCL — the atomic create either succeeds (lock acquired)
 * or fails (someone else is writing), with no in-process state, so it
 * also excludes writers in other processes sharing the directory.
 * WriteLock is RAII: destruction unlinks the sidecar. A crashed
 * writer's stale lock is surfaced as ArtifactError(Io) naming the
 * sidecar, never silently stolen — the operator (or the chaos
 * driver's restart path) removes it deliberately via breakLock().
 */

#ifndef MFLSTM_IO_STORE_HH
#define MFLSTM_IO_STORE_HH

#include <string>
#include <vector>

#include "io/artifact.hh"

namespace mflstm {
namespace io {

class ArtifactStore
{
  public:
    /**
     * Opens (creating if needed) the store directory.
     * @throws ArtifactError(Io) when the directory cannot be created.
     */
    explicit ArtifactStore(std::string dir);

    const std::string &dir() const { return dir_; }

    /**
     * Absolute path of artifact @p name inside the store.
     * @throws ArtifactError(Malformed) on an empty name or one that
     *         escapes the directory ('/', "..").
     */
    std::string path(const std::string &name) const;

    /** Does artifact @p name exist (any readable file counts)? */
    bool exists(const std::string &name) const;

    /** Sorted artifact names, excluding lock and quarantine sidecars. */
    std::vector<std::string> list() const;

    /** Holds the single-writer lock for one artifact until destroyed. */
    class WriteLock
    {
      public:
        WriteLock(WriteLock &&o) noexcept;
        WriteLock &operator=(WriteLock &&o) noexcept;
        WriteLock(const WriteLock &) = delete;
        WriteLock &operator=(const WriteLock &) = delete;
        ~WriteLock();

        const std::string &lockPath() const { return lockPath_; }

      private:
        friend class ArtifactStore;
        explicit WriteLock(std::string lock_path);

        std::string lockPath_;  // empty after move-out
    };

    /**
     * Acquire the single-writer lock for artifact @p name.
     * @throws ArtifactError(Io) when another writer already holds it
     *         (the message names the sidecar file).
     */
    WriteLock lockForWrite(const std::string &name) const;

    /** Is the @p name write lock currently held (by anyone)? */
    bool locked(const std::string &name) const;

    /**
     * Remove a stale lock left by a crashed writer. Deliberate-only
     * recovery — normal writers fail instead of stealing. Returns
     * true when a sidecar was removed.
     */
    bool breakLock(const std::string &name) const;

  private:
    std::string lockPath(const std::string &name) const;

    std::string dir_;
};

} // namespace io
} // namespace mflstm

#endif // MFLSTM_IO_STORE_HH
