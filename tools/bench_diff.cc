/**
 * @file
 * Bench-report comparator: diffs two BENCH_<name>.json files (or two
 * directories of them, matched by filename) produced by the shared
 * bench::BenchReport writer, prints a per-metric delta table and gates
 * on the geometric mean of the "goodness" ratios.
 *
 * Direction convention: a metric is lower-is-better when its dotted
 * path ends in a cost suffix (_us, _ms, _ns, _bytes, _j, _cycles,
 * _loss_pct, _overhead_pct); everything else — speedups, accuracies,
 * scores, compression factors — is higher-is-better. Each comparable
 * metric contributes the ratio current/baseline oriented so that >1
 * means "got better"; the gate trips when the geomean of those ratios
 * falls below 1 - tolerance (default 5%).
 *
 * Exit codes (PR 1 convention):
 *   0  within tolerance
 *   1  geomean regression beyond tolerance
 *   2  usage error, unreadable input, or schema mismatch
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace {

using namespace mflstm;

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_diff [--tolerance-pct P] <baseline> <current>\n"
        "  <baseline>/<current>: a BENCH_*.json file, or a directory\n"
        "  of them (matched pairwise by filename)\n"
        "  --tolerance-pct P: allowed geomean regression, default 5\n");
    std::exit(2);
}

/** One parsed BENCH_<name>.json: bench name -> metric -> value. */
struct BenchFile
{
    std::string name;
    std::map<std::string, double> metrics;
};

BenchFile
loadBenchFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "bench_diff: cannot read %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::stringstream ss;
    ss << is.rdbuf();
    const std::optional<obs::JsonValue> doc = obs::parseJson(ss.str());
    if (!doc || doc->kind != obs::JsonValue::Kind::Object) {
        std::fprintf(stderr, "bench_diff: %s is not valid JSON\n",
                     path.c_str());
        std::exit(2);
    }
    const obs::JsonValue *schema = doc->find("schema");
    const obs::JsonValue *version = doc->find("version");
    const obs::JsonValue *name = doc->find("name");
    const obs::JsonValue *metrics = doc->find("metrics");
    if (!schema || schema->str != "mflstm.bench" || !version ||
        version->number != 1.0 || !name || !metrics ||
        metrics->kind != obs::JsonValue::Kind::Object) {
        std::fprintf(stderr,
                     "bench_diff: %s is not a mflstm.bench v1 report\n",
                     path.c_str());
        std::exit(2);
    }
    BenchFile f;
    f.name = name->str;
    for (const auto &[key, value] : metrics->members) {
        if (value.kind == obs::JsonValue::Kind::Number)
            f.metrics[key] = value.number;
    }
    return f;
}

/** Metric direction from the path suffix (see file comment). */
bool
lowerIsBetter(const std::string &metric)
{
    static const char *const kCostSuffixes[] = {
        "_us",       "_ms",          "_ns",          "_bytes",
        "_j",        "_cycles",      "_loss_pct",    "_overhead_pct",
    };
    for (const char *suffix : kCostSuffixes) {
        const std::size_t n = std::strlen(suffix);
        if (metric.size() >= n &&
            metric.compare(metric.size() - n, n, suffix) == 0) {
            return true;
        }
    }
    return false;
}

struct DiffStats
{
    std::vector<double> goodnessRatios;
    std::size_t regressions = 0;
    std::size_t compared = 0;
};

void
diffOne(const std::string &label, const BenchFile &base,
        const BenchFile &cur, double tolerance_pct, DiffStats &stats)
{
    std::printf("== %s ==\n", label.c_str());
    std::printf("%-44s %14s %14s %9s\n", "metric", "baseline",
                "current", "delta");

    std::set<std::string> keys;
    for (const auto &[k, v] : base.metrics)
        keys.insert(k);
    for (const auto &[k, v] : cur.metrics)
        keys.insert(k);

    for (const std::string &k : keys) {
        const auto b = base.metrics.find(k);
        const auto c = cur.metrics.find(k);
        if (b == base.metrics.end()) {
            std::printf("%-44s %14s %14.6g %9s\n", k.c_str(), "-",
                        c->second, "new");
            continue;
        }
        if (c == cur.metrics.end()) {
            std::printf("%-44s %14.6g %14s %9s\n", k.c_str(),
                        b->second, "-", "gone");
            continue;
        }
        ++stats.compared;
        const double bv = b->second, cv = c->second;
        if (bv == 0.0 || cv == 0.0 || bv * cv < 0.0 ||
            !std::isfinite(bv) || !std::isfinite(cv)) {
            // No meaningful ratio (zero crossing / sign flip): print
            // but leave it out of the geomean gate.
            std::printf("%-44s %14.6g %14.6g %9s\n", k.c_str(), bv, cv,
                        bv == cv ? "=" : "n/a");
            continue;
        }
        const double delta_pct = 100.0 * (cv - bv) / std::fabs(bv);
        const bool lower = lowerIsBetter(k);
        const double goodness =
            lower ? std::fabs(bv / cv) : std::fabs(cv / bv);
        stats.goodnessRatios.push_back(goodness);
        const bool worse = goodness < 1.0 - tolerance_pct / 100.0;
        if (worse)
            ++stats.regressions;
        std::printf("%-44s %14.6g %14.6g %+8.2f%%%s\n", k.c_str(), bv,
                    cv, delta_pct, worse ? "  <-- worse" : "");
    }
    std::printf("\n");
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 1.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

/** BENCH_*.json files directly inside @p dir, sorted by filename. */
std::vector<std::string>
benchFilesIn(const std::string &dir)
{
    std::vector<std::string> names;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string fn = entry.path().filename().string();
        if (fn.rfind("BENCH_", 0) == 0 &&
            fn.size() > 5 + 5 &&  // "BENCH_" ... ".json"
            fn.compare(fn.size() - 5, 5, ".json") == 0) {
            names.push_back(fn);
        }
    }
    std::sort(names.begin(), names.end());
    return names;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    double tolerance_pct = 5.0;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tolerance-pct") {
            if (i + 1 >= argc)
                usage();
            char *end = nullptr;
            tolerance_pct = std::strtod(argv[++i], &end);
            if (end == nullptr || *end != '\0' || tolerance_pct < 0.0)
                usage();
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2)
        usage();

    const bool base_dir = std::filesystem::is_directory(paths[0]);
    const bool cur_dir = std::filesystem::is_directory(paths[1]);
    if (base_dir != cur_dir) {
        std::fprintf(stderr,
                     "bench_diff: %s and %s must both be files or both "
                     "be directories\n",
                     paths[0].c_str(), paths[1].c_str());
        return 2;
    }

    DiffStats stats;
    if (!base_dir) {
        diffOne(paths[1], loadBenchFile(paths[0]),
                loadBenchFile(paths[1]), tolerance_pct, stats);
    } else {
        const std::vector<std::string> base_files =
            benchFilesIn(paths[0]);
        const std::vector<std::string> cur_files = benchFilesIn(paths[1]);
        std::size_t matched = 0;
        for (const std::string &fn : base_files) {
            if (std::find(cur_files.begin(), cur_files.end(), fn) ==
                cur_files.end()) {
                std::fprintf(stderr,
                             "bench_diff: %s only in baseline dir\n",
                             fn.c_str());
                continue;
            }
            ++matched;
            diffOne(fn, loadBenchFile(paths[0] + "/" + fn),
                    loadBenchFile(paths[1] + "/" + fn), tolerance_pct,
                    stats);
        }
        for (const std::string &fn : cur_files) {
            if (std::find(base_files.begin(), base_files.end(), fn) ==
                base_files.end()) {
                std::fprintf(stderr,
                             "bench_diff: %s only in current dir\n",
                             fn.c_str());
            }
        }
        if (matched == 0) {
            std::fprintf(stderr,
                         "bench_diff: no BENCH_*.json pair matched\n");
            return 2;
        }
    }

    const double gm = geomean(stats.goodnessRatios);
    const bool gate = gm < 1.0 - tolerance_pct / 100.0;
    std::printf("%zu metrics compared, %zu beyond tolerance; goodness "
                "geomean %.4f (gate: < %.4f fails)\n",
                stats.compared, stats.regressions, gm,
                1.0 - tolerance_pct / 100.0);
    if (gate) {
        std::printf("REGRESSION: geomean worsened by more than %.1f%%\n",
                    tolerance_pct);
        return 1;
    }
    std::printf("OK\n");
    return 0;
}
