/**
 * @file
 * mflstm_cli — command-line experiment driver.
 *
 * Subcommands:
 *   list                         the Table II applications
 *   run   --app NAME [options]   run one plan at one threshold set
 *   sweep --app NAME [options]   sweep the full threshold ladder
 *   mts   --app NAME             the Fig. 9 tissue-size sweep
 *   help                         print usage
 *
 * Common options:
 *   --plan baseline|inter|intra-sw|intra-hw|combined|zero-pruning
 *   --set N            threshold ladder rung (0..10, default AO)
 *   --gpu tx1|tx2      target GPU model (default tx1)
 *   --csv              emit one CSV row instead of the table
 *   --trace-csv FILE   dump the lowered kernel trace as CSV
 *   --trace-out FILE   write a Chrome trace-event JSON timeline
 *                      (open in Perfetto / chrome://tracing)
 *   --metrics-out FILE write the metrics registry as JSON
 *   --help             print usage and exit
 *
 * Any unrecognised argument prints usage and exits with status 2.
 * Trained accuracy models are cached in ./mflstm_model_cache.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>

#include "harness.hh"
#include "obs/observer.hh"
#include "runtime/report.hh"

namespace {

using namespace mflstm;
using namespace mflstm::bench;

struct Options
{
    std::string command;
    std::string app = "IMDB";
    runtime::PlanKind plan = runtime::PlanKind::Combined;
    std::optional<std::size_t> set;
    std::string gpuName = "tx1";
    bool csv = false;
    std::string traceCsv;
    std::string traceOut;
    std::string metricsOut;

    /** The observability sinks were requested on the command line. */
    bool wantsObserver() const
    {
        return !traceOut.empty() || !metricsOut.empty();
    }
};

void
printUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: mflstm_cli <list|run|sweep|mts|help> [options]\n"
        "\n"
        "options:\n"
        "  --app NAME         Table II application (default IMDB)\n"
        "  --plan KIND        baseline|inter|intra-sw|intra-hw|"
        "combined|zero-pruning\n"
        "  --set N            threshold ladder rung (default: AO)\n"
        "  --gpu tx1|tx2      target GPU model (default tx1)\n"
        "  --csv              emit one CSV row instead of the table\n"
        "  --trace-csv FILE   dump the lowered kernel trace as CSV\n"
        "  --trace-out FILE   write a Chrome trace-event JSON timeline\n"
        "  --metrics-out FILE write the metrics registry as JSON\n"
        "  --help             print this message and exit\n");
}

int
usage()
{
    printUsage(stderr);
    return 2;
}

std::optional<runtime::PlanKind>
parsePlan(const std::string &s)
{
    static const std::map<std::string, runtime::PlanKind> kinds = {
        {"baseline", runtime::PlanKind::Baseline},
        {"inter", runtime::PlanKind::InterCell},
        {"intra-sw", runtime::PlanKind::IntraCellSw},
        {"intra-hw", runtime::PlanKind::IntraCellHw},
        {"combined", runtime::PlanKind::Combined},
        {"zero-pruning", runtime::PlanKind::ZeroPruning},
    };
    const auto it = kinds.find(s);
    if (it == kinds.end())
        return std::nullopt;
    return it->second;
}

gpu::GpuConfig
gpuFor(const std::string &name)
{
    return name == "tx2" ? gpu::GpuConfig::tegraX2Like()
                         : gpu::GpuConfig::tegraX1();
}

/** Write the observer's sinks to the files requested in @p opt. */
int
writeObserverOutputs(const Options &opt, const obs::Observer &observer)
{
    if (!opt.traceOut.empty()) {
        std::ofstream os(opt.traceOut);
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         opt.traceOut.c_str());
            return 2;
        }
        observer.tracer().writeChromeTrace(os);
        std::fprintf(stderr,
                     "trace written to %s (open in "
                     "https://ui.perfetto.dev)\n",
                     opt.traceOut.c_str());
    }
    if (!opt.metricsOut.empty()) {
        std::ofstream os(opt.metricsOut);
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         opt.metricsOut.c_str());
            return 2;
        }
        observer.metrics().writeJson(os);
        std::fprintf(stderr, "metrics written to %s\n",
                     opt.metricsOut.c_str());
    }
    return 0;
}

int
cmdList()
{
    std::printf("%-6s %-4s %8s %7s %7s  %s\n", "name", "abbr", "hidden",
                "layers", "length", "task");
    for (const workloads::BenchmarkSpec &spec : workloads::tableII()) {
        std::printf("%-6s %-4s %8zu %7zu %7zu  %s\n", spec.name.c_str(),
                    spec.abbrev.c_str(), spec.hiddenSize, spec.numLayers,
                    spec.length,
                    spec.isLanguageModel() ? "language-model"
                                           : "classification");
    }
    return 0;
}

int
cmdRun(const Options &opt)
{
    obs::Observer observer;
    obs::Observer *obs = opt.wantsObserver() ? &observer : nullptr;

    AppContext app;
    {
        auto ph = obs::Observer::phase(obs, "app-setup");
        app = makeApp(workloads::benchmarkByName(opt.app));
    }
    auto mf = std::make_unique<core::MemoryFriendlyLstm>(
        *app.model,
        core::MemoryFriendlyLstm::Config{
            gpuFor(opt.gpuName), app.spec.timingShape(), obs});
    mf->calibrate(app.data.calibrationSequences(kCalibrationSeqs));
    const auto ladder = mf->calibration().ladder();

    // Pick the rung: explicit --set, otherwise this plan's AO.
    std::size_t rung;
    if (opt.set) {
        if (*opt.set >= ladder.size()) {
            std::fprintf(stderr, "error: --set must be 0..%zu\n",
                         ladder.size() - 1);
            return 2;
        }
        rung = *opt.set;
    } else {
        const SchemeCurve curve =
            evaluateScheme(*mf, app, opt.plan, ladder);
        rung = core::selectAo(curve.points, app.baselineAccuracy, 2.0);
    }

    runtime::ExecutionPlan probe;
    probe.kind = opt.plan;
    mf->runner().resetStats();
    mf->runner().setThresholds(
        probe.usesInter() ? ladder[rung].alphaInter : 0.0,
        probe.usesIntra() ? ladder[rung].alphaIntra : 0.0);
    double acc = 0.0;
    {
        auto ph = obs::Observer::phase(obs, "accuracy-eval");
        acc = evalAccuracy(*mf, app);
    }
    const core::TimingOutcome out = mf->evaluateTiming(opt.plan);

    if (!opt.traceCsv.empty()) {
        std::ofstream os(opt.traceCsv);
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         opt.traceCsv.c_str());
            return 2;
        }
        runtime::writeTraceCsv(
            os, mf->executor().lowering().lower(
                    mf->config().timingShape, out.plan));
        std::fprintf(stderr, "kernel trace written to %s\n",
                     opt.traceCsv.c_str());
    }

    if (const int rc = writeObserverOutputs(opt, observer))
        return rc;

    if (opt.csv) {
        std::printf("%s\n", runtime::runCsvHeader().c_str());
        std::printf("%s\n",
                    runtime::runCsvRow(opt.app, out.report).c_str());
        return 0;
    }

    std::printf("%s (threshold set %zu, GPU %s)\n", opt.app.c_str(),
                rung, mf->executor().config().name.c_str());
    std::printf("accuracy %.1f%% (baseline %.1f%%)\n\n", 100.0 * acc,
                100.0 * app.baselineAccuracy);
    std::printf("%s\n",
                runtime::formatComparison(mf->baseline(), out.report)
                    .c_str());
    std::printf("%s", runtime::formatRunReport(out.report).c_str());
    return 0;
}

int
cmdSweep(const Options &opt)
{
    obs::Observer observer;
    obs::Observer *obs = opt.wantsObserver() ? &observer : nullptr;

    AppContext app;
    {
        auto ph = obs::Observer::phase(obs, "app-setup");
        app = makeApp(workloads::benchmarkByName(opt.app));
    }
    auto mf = std::make_unique<core::MemoryFriendlyLstm>(
        *app.model,
        core::MemoryFriendlyLstm::Config{
            gpuFor(opt.gpuName), app.spec.timingShape(), obs});
    mf->calibrate(app.data.calibrationSequences(kCalibrationSeqs));
    const auto ladder = mf->calibration().ladder();
    const SchemeCurve curve =
        evaluateScheme(*mf, app, opt.plan, ladder);

    if (const int rc = writeObserverOutputs(opt, observer))
        return rc;

    if (opt.csv) {
        std::printf("set,alpha_inter,alpha_intra,speedup,accuracy\n");
        for (const auto &pt : curve.points) {
            std::printf("%zu,%g,%g,%g,%g\n", pt.index,
                        pt.set.alphaInter, pt.set.alphaIntra,
                        pt.speedup, pt.accuracy);
        }
        return 0;
    }

    std::printf("%s / %s (baseline accuracy %.1f%%)\n", opt.app.c_str(),
                runtime::toString(opt.plan), 100.0 * app.baselineAccuracy);
    std::printf("%4s %12s %12s %9s %9s\n", "set", "alpha_inter",
                "alpha_intra", "speedup", "accuracy");
    for (const auto &pt : curve.points) {
        std::printf("%4zu %12.2f %12.4f %8.2fx %8.1f%%\n", pt.index,
                    pt.set.alphaInter, pt.set.alphaIntra, pt.speedup,
                    100.0 * pt.accuracy);
    }
    const std::size_t ao =
        core::selectAo(curve.points, app.baselineAccuracy, 2.0);
    std::printf("AO = set %zu, BPA = set %zu\n", ao,
                core::selectBpa(curve.points));
    return 0;
}

int
cmdMts(const Options &opt)
{
    obs::Observer observer;
    obs::Observer *obs = opt.wantsObserver() ? &observer : nullptr;

    const workloads::BenchmarkSpec &spec =
        workloads::benchmarkByName(opt.app);
    runtime::NetworkExecutor ex(gpuFor(opt.gpuName), obs);
    const core::MtsResult res = core::findMts(
        ex, {spec.hiddenSize, spec.hiddenSize, spec.length}, 10);

    if (const int rc = writeObserverOutputs(opt, observer))
        return rc;

    std::printf("%s on %s\n", opt.app.c_str(),
                ex.config().name.c_str());
    std::printf("%4s %12s %10s\n", "k", "layer time", "shared bw");
    for (std::size_t k = 1; k <= res.timesUs.size(); ++k) {
        std::printf("%4zu %10.2fms %9.0f%% %s\n", k,
                    res.timesUs[k - 1] / 1e3,
                    100.0 * res.sharedUtilization[k - 1],
                    k == res.mts ? "<- MTS" : "");
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    Options opt;
    opt.command = argv[1];
    if (opt.command == "--help" || opt.command == "-h" ||
        opt.command == "help") {
        printUsage(stdout);
        return 0;
    }
    if (opt.command != "list" && opt.command != "run" &&
        opt.command != "sweep" && opt.command != "mts") {
        std::fprintf(stderr, "unknown command: %s\n",
                     opt.command.c_str());
        return usage();
    }

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            return 0;
        } else if (arg == "--app") {
            const char *v = next();
            if (!v)
                return usage();
            opt.app = v;
        } else if (arg == "--plan") {
            const char *v = next();
            const auto kind = v ? parsePlan(v) : std::nullopt;
            if (!kind) {
                std::fprintf(stderr, "bad --plan value: %s\n",
                             v ? v : "(missing)");
                return usage();
            }
            opt.plan = *kind;
        } else if (arg == "--set") {
            const char *v = next();
            char *end = nullptr;
            const unsigned long n =
                v ? std::strtoul(v, &end, 10) : 0;
            if (!v || end == v || *end != '\0') {
                std::fprintf(stderr, "bad --set value: %s\n",
                             v ? v : "(missing)");
                return usage();
            }
            opt.set = static_cast<std::size_t>(n);
        } else if (arg == "--gpu") {
            const char *v = next();
            if (!v || (std::strcmp(v, "tx1") != 0 &&
                       std::strcmp(v, "tx2") != 0)) {
                std::fprintf(stderr, "bad --gpu value: %s\n",
                             v ? v : "(missing)");
                return usage();
            }
            opt.gpuName = v;
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--trace-csv") {
            const char *v = next();
            if (!v)
                return usage();
            opt.traceCsv = v;
        } else if (arg == "--trace-out") {
            const char *v = next();
            if (!v)
                return usage();
            opt.traceOut = v;
        } else if (arg == "--metrics-out") {
            const char *v = next();
            if (!v)
                return usage();
            opt.metricsOut = v;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return usage();
        }
    }

    try {
        if (opt.command == "list")
            return cmdList();
        if (opt.command == "run")
            return cmdRun(opt);
        if (opt.command == "sweep")
            return cmdSweep(opt);
        return cmdMts(opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
