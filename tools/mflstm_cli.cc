/**
 * @file
 * mflstm_cli — command-line experiment driver.
 *
 * Subcommands:
 *   list                         the Table II applications
 *   run   --app NAME [options]   run one plan at one threshold set
 *   sweep --app NAME [options]   sweep the full threshold ladder
 *   mts   --app NAME             the Fig. 9 tissue-size sweep
 *   serve --app NAME [options]   batched serving demo (DESIGN.md §9)
 *   fleet --app NAME [options]   replicated serving with failover and
 *                                a deterministic chaos schedule
 *                                (DESIGN.md §16)
 *   profile --app NAME [options] byte-ledger attribution profile
 *                                (DESIGN.md §13)
 *   tune  --app NAME [options]   search per-layer schedules and cache
 *                                the dominating plan (DESIGN.md §14)
 *   fsck  [--cache-dir DIR]      verify every artifact in a cache dir
 *   backends                     list the hardware backend registry
 *                                (DESIGN.md §17)
 *   help                         print usage
 *
 * Common options:
 *   --plan baseline|inter|intra-sw|intra-hw|combined|zero-pruning|
 *          persistent
 *   --set N            threshold ladder rung (0..10, default AO)
 *   --quant MODE       fp32|int8|int4 weight precision (default fp32;
 *                      ignored by --plan zero-pruning, whose CSR
 *                      comparator is defined on fp32 weights)
 *   --backend NAME     hardware backend from the registry (default
 *                      tx1; see `mflstm backends`); an unknown name
 *                      exits with status 2
 *   --gpu tx1|tx2      legacy alias for --backend (same registry)
 *   --csv              emit one CSV row instead of the table
 *   --trace-csv FILE   dump the lowered kernel trace as CSV
 *   --trace-out FILE   write a Chrome trace-event JSON timeline
 *                      (open in Perfetto / chrome://tracing)
 *   --metrics-out FILE write the metrics registry (see --metrics-format)
 *   --metrics-format F json (default) or prom (Prometheus text
 *                      exposition) for --metrics-out
 *   --help             print usage and exit
 *
 * profile options:
 *   --out FILE         write the attribution report JSON
 *   --baseline FILE    differential mode: diff this run against a
 *                      previously written report; per-node regressions
 *                      beyond --tolerance-pct exit 1
 *   --tolerance-pct X  regression threshold, percent (default 0.1)
 *
 * tune options:
 *   --out FILE         write the tune report JSON ("mflstm.tune")
 *   --cache-dir DIR    tuned-plan artifact cache (default
 *                      mflstm_model_cache); a valid cached plan skips
 *                      the search, a corrupt one is quarantined
 *   --force            ignore (and rewrite) the cached plan
 *   --batch N          batch the plan is tuned for (default 8,
 *                      matching serve)
 *
 * serve options (synthetic open-loop workload):
 *   --tuned            serve sched-searched plans instead of the
 *                      --plan preset on every rung (never worse on
 *                      simulated time or DRAM bytes); with
 *                      --state-dir the tuned plans are cached there
 *   --requests N       requests to submit (default 64)
 *   --batch N          max sequences per batched run (default 8)
 *   --workers N        engine worker threads (default 2)
 *   --arrival-us N     mean inter-arrival gap in microseconds
 *                      (default 200; 0 = submit everything at once)
 *   --deadline-ms X    per-request wall deadline (default 0 = none)
 *   --queue-capacity N bound the request queue (default 0 = unbounded)
 *   --admission P      reject | drop-oldest | block (default reject)
 *   --admit-timeout-ms X  producer wait bound for block (default 5)
 *   --fault-rate X     transient-fault injection probability per site
 *   --chaos-seed N     seed for the fault injector (default 1); the
 *                      same seed replays the same fault schedule
 *   --retries N        retry budget after a transient fault (default 2)
 *   --governor         degrade thresholds AO->BPA under pressure
 *   --state-dir DIR    persist calibration + engine warm state in DIR
 *                      and restore them on the next start; SIGTERM /
 *                      SIGINT triggers a graceful drain (stop
 *                      admissions, finish in-flight batches, save
 *                      state, exit 0)
 *
 * fleet options (replicated serving; also takes the serve knobs
 * --requests/--batch/--workers/--deadline-ms/--governor):
 *   --replicas N       engine replicas behind the router (default 2)
 *   --policy P         affinity | round-robin | least-loaded
 *                      (default affinity)
 *   --chaos            install ChaosPlan::standard over the run: one
 *                      crash, brownout, corrupt restart and flash
 *                      crowd in disjoint quarters of the horizon
 *   --chaos-seed N     chaos plan seed (default 1); recorded in the
 *                      output so any run replays bit-identically
 *   --no-failover      disable failover/hedging/parking — a failure
 *                      is terminal (the bench gate's control arm)
 *   --ticks N          control ticks to drive (default 16)
 *   --store-dir DIR    shared warm-state artifact store (default
 *                      mflstm_fleet_store); replica 0 seeds it, the
 *                      rest warm-boot from it
 *   exit status: 0 = every accepted request reached a terminal
 *   response, 1 = requests were lost
 *
 * fsck options:
 *   --cache-dir DIR    directory to verify (default mflstm_model_cache)
 *   --quarantine       rename corrupt files to <name>.corrupt
 *   exit status: 0 = everything verified, 1 = corruption found
 *
 * Corrupt cache artifacts never abort a run: they are quarantined
 * (renamed *.corrupt), counted in artifact_load_rejected_total, and
 * recomputed.
 *
 * Any unrecognised argument prints usage and exits with status 2.
 * Trained accuracy models are cached in ./mflstm_model_cache.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "core/persist.hh"
#include "fleet/fleet.hh"
#include "harness.hh"
#include "hw/backend.hh"
#include "io/fsck.hh"
#include "nn/serialize.hh"
#include "obs/ledger.hh"
#include "obs/observer.hh"
#include "obs/profile.hh"
#include "obs/json.hh"
#include "quant/serialize.hh"
#include "runtime/report.hh"
#include "sched/persist.hh"
#include "serve/engine.hh"
#include "serve/persist.hh"

namespace {

using namespace mflstm;
using namespace mflstm::bench;

struct Options
{
    std::string command;
    std::string app = "IMDB";
    runtime::PlanKind plan = runtime::PlanKind::Combined;
    std::optional<std::size_t> set;
    quant::QuantMode quantMode = quant::QuantMode::Fp32;
    std::string gpuName = "tx1";
    bool csv = false;
    std::string traceCsv;
    std::string traceOut;
    std::string metricsOut;
    std::string metricsFormat = "json";

    // profile
    std::string profileOut;
    std::string baselinePath;
    double tolerancePct = 0.1;

    // serve
    std::size_t requests = 64;
    std::size_t batch = 8;
    std::size_t workers = 2;
    std::size_t arrivalUs = 200;
    double deadlineMs = 0.0;
    std::size_t queueCapacity = 0;
    serve::AdmissionPolicy admission = serve::AdmissionPolicy::RejectNew;
    double admitTimeoutMs = 5.0;
    double faultRate = 0.0;
    std::uint64_t chaosSeed = 1;
    int retries = 2;
    bool governor = false;
    bool tuned = false;
    std::string stateDir;

    // fleet
    std::size_t replicas = 2;
    fleet::RoutingPolicy policy = fleet::RoutingPolicy::SessionAffinity;
    bool chaos = false;
    bool failover = true;
    std::size_t ticks = 16;
    std::string storeDir = "mflstm_fleet_store";

    // tune
    bool forceTune = false;

    // fsck
    std::string cacheDir = "mflstm_model_cache";
    bool quarantineBad = false;

    /** The observability sinks were requested on the command line. */
    bool wantsObserver() const
    {
        return !traceOut.empty() || !metricsOut.empty();
    }
};

void
printUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: mflstm_cli "
        "<list|run|sweep|mts|serve|fleet|profile|tune|fsck|help> "
        "[options]\n"
        "\n"
        "options:\n"
        "  --app NAME         Table II application (default IMDB)\n"
        "  --plan KIND        baseline|inter|intra-sw|intra-hw|"
        "combined|zero-pruning|persistent\n"
        "  --set N            threshold ladder rung (default: AO)\n"
        "  --quant MODE       fp32|int8|int4 weight precision "
        "(default fp32)\n"
        "  --backend NAME     hardware backend from the registry\n"
        "                     (default tx1; list with `mflstm "
        "backends`)\n"
        "  --gpu tx1|tx2      legacy alias for --backend\n"
        "  --csv              emit one CSV row instead of the table\n"
        "  --trace-csv FILE   dump the lowered kernel trace as CSV\n"
        "  --trace-out FILE   write a Chrome trace-event JSON timeline\n"
        "  --metrics-out FILE write the metrics registry (see "
        "--metrics-format)\n"
        "  --metrics-format F json (default) | prom for --metrics-out\n"
        "  --help             print this message and exit\n"
        "\n"
        "profile options:\n"
        "  --out FILE         write the attribution report JSON\n"
        "  --baseline FILE    diff against a saved report; regressions\n"
        "                     beyond --tolerance-pct exit 1\n"
        "  --tolerance-pct X  regression threshold, percent "
        "(default 0.1)\n"
        "\n"
        "tune options:\n"
        "  --out FILE         write the tune report JSON\n"
        "  --cache-dir DIR    tuned-plan cache (default "
        "mflstm_model_cache)\n"
        "  --force            ignore (and rewrite) the cached plan\n"
        "  --batch N          batch the plan is tuned for (default 8)\n"
        "\n"
        "serve options (synthetic open-loop workload):\n"
        "  --tuned            serve sched-searched plans per rung\n"
        "  --requests N       requests to submit (default 64)\n"
        "  --batch N          max sequences per batched run (default 8)\n"
        "  --workers N        engine worker threads (default 2)\n"
        "  --arrival-us N     mean inter-arrival gap, microseconds\n"
        "                     (default 200; 0 = all at once)\n"
        "  --deadline-ms X    per-request wall deadline (default none)\n"
        "  --queue-capacity N bound the queue (default 0 = unbounded)\n"
        "  --admission P      reject | drop-oldest | block\n"
        "  --admit-timeout-ms X  producer wait bound for block\n"
        "  --fault-rate X     transient-fault probability per site\n"
        "  --chaos-seed N     fault-injector seed (default 1)\n"
        "  --retries N        retry budget per transient fault\n"
        "  --governor         degrade thresholds AO->BPA under load\n"
        "  --state-dir DIR    persist/restore calibration + engine\n"
        "                     warm state; SIGTERM drains gracefully\n"
        "\n"
        "fleet options (plus the serve knobs above):\n"
        "  --replicas N       engine replicas (default 2)\n"
        "  --policy P         affinity | round-robin | least-loaded\n"
        "  --chaos            run the standard seeded chaos plan\n"
        "  --chaos-seed N     chaos plan seed (default 1; recorded,\n"
        "                     replays bit-identically)\n"
        "  --no-failover      failures are terminal (control arm)\n"
        "  --ticks N          control ticks to drive (default 16)\n"
        "  --store-dir DIR    shared warm-state store (default\n"
        "                     mflstm_fleet_store)\n"
        "  exit 0 = zero lost requests, 1 = requests lost\n"
        "\n"
        "fsck options:\n"
        "  --cache-dir DIR    directory to verify (default "
        "mflstm_model_cache)\n"
        "  --quarantine       rename corrupt files to <name>.corrupt\n"
        "  exit 0 = all artifacts verified, 1 = corruption found\n"
        "\n"
        "backends:\n"
        "  list every registered hardware backend (id, kind, revision,\n"
        "  capability flags) usable with --backend\n");
}

int
usage()
{
    printUsage(stderr);
    return 2;
}

std::optional<runtime::PlanKind>
parsePlan(const std::string &s)
{
    // The round-trip parser owns the alias table; Tuned is not a
    // requestable preset (it only exists as a search *result*), so a
    // --plan tuned is redirected to the tune subcommand.
    return runtime::planKindFromString(s);
}

/**
 * Resolve a backend id through the hw registry. Both --backend and the
 * legacy --gpu alias validate at parse time, so get() cannot throw
 * here.
 */
gpu::GpuConfig
gpuFor(const std::string &name)
{
    return hw::registry().get(name).config;
}

/** `mflstm backends`: print the hardware backend registry. */
int
cmdBackends()
{
    std::printf("%-6s %-12s %-4s %-10s %s\n", "id", "kind", "rev",
                "caps", "backend");
    for (const hw::Backend &b : hw::registry().entries()) {
        std::string caps;
        if (b.config.int8DotUnits)
            caps += "dp4a";
        if (b.config.explicitWeightMemory)
            caps += caps.empty() ? "wmem" : "+wmem";
        if (caps.empty())
            caps = "-";
        std::printf("%-6s %-12s %-4d %-10s %s\n", b.id.c_str(),
                    hw::toString(b.kind), b.revision, caps.c_str(),
                    b.display.c_str());
        std::printf("%-6s %s\n", "", b.summary.c_str());
    }
    return 0;
}

/** Write the observer's sinks to the files requested in @p opt. */
int
writeObserverOutputs(const Options &opt, const obs::Observer &observer)
{
    if (!opt.traceOut.empty()) {
        std::ofstream os(opt.traceOut);
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         opt.traceOut.c_str());
            return 2;
        }
        observer.tracer().writeChromeTrace(os);
        std::fprintf(stderr,
                     "trace written to %s (open in "
                     "https://ui.perfetto.dev)\n",
                     opt.traceOut.c_str());
    }
    if (!opt.metricsOut.empty()) {
        std::ofstream os(opt.metricsOut);
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         opt.metricsOut.c_str());
            return 2;
        }
        if (opt.metricsFormat == "prom")
            observer.metrics().writePrometheus(os);
        else
            observer.metrics().writeJson(os);
        std::fprintf(stderr, "metrics written to %s (%s)\n",
                     opt.metricsOut.c_str(), opt.metricsFormat.c_str());
    }
    return 0;
}

int
cmdList()
{
    std::printf("%-6s %-4s %8s %7s %7s  %s\n", "name", "abbr", "hidden",
                "layers", "length", "task");
    for (const workloads::BenchmarkSpec &spec : workloads::tableII()) {
        std::printf("%-6s %-4s %8zu %7zu %7zu  %s\n", spec.name.c_str(),
                    spec.abbrev.c_str(), spec.hiddenSize, spec.numLayers,
                    spec.length,
                    spec.isLanguageModel() ? "language-model"
                                           : "classification");
    }
    return 0;
}

int
cmdRun(const Options &opt)
{
    obs::Observer observer;
    obs::Observer *obs = opt.wantsObserver() ? &observer : nullptr;

    AppContext app;
    {
        auto ph = obs::Observer::phase(obs, "app-setup");
        app = makeApp(workloads::benchmarkByName(opt.app));
    }
    auto mf = std::make_unique<core::MemoryFriendlyLstm>(
        *app.model,
        core::MemoryFriendlyLstm::Config{
            gpuFor(opt.gpuName), app.spec.timingShape(), obs});
    mf->calibrate(app.data.calibrationSequences(kCalibrationSeqs));
    auto ladder = mf->calibration().ladder();
    for (core::ThresholdSet &set : ladder)
        set.quant = opt.quantMode;

    // Pick the rung: explicit --set, otherwise this plan's AO.
    std::size_t rung;
    if (opt.set) {
        if (*opt.set >= ladder.size()) {
            std::fprintf(stderr, "error: --set must be 0..%zu\n",
                         ladder.size() - 1);
            return 2;
        }
        rung = *opt.set;
    } else {
        const SchemeCurve curve =
            evaluateScheme(*mf, app, opt.plan, ladder);
        rung = core::selectAo(curve.points, app.baselineAccuracy, 2.0);
    }

    runtime::ExecutionPlan probe;
    probe.kind = opt.plan;
    mf->setThresholds(
        {probe.usesInter() ? ladder[rung].alphaInter : 0.0,
         probe.usesIntra() ? ladder[rung].alphaIntra : 0.0,
         opt.quantMode});
    double acc = 0.0;
    {
        auto ph = obs::Observer::phase(obs, "accuracy-eval");
        acc = evalAccuracy(*mf, app);
    }
    const core::TimingOutcome out = mf->evaluateTiming(opt.plan);

    if (!opt.traceCsv.empty()) {
        std::ofstream os(opt.traceCsv);
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         opt.traceCsv.c_str());
            return 2;
        }
        runtime::writeTraceCsv(
            os, mf->executor().lowering().lower(
                    mf->config().timingShape, out.plan));
        std::fprintf(stderr, "kernel trace written to %s\n",
                     opt.traceCsv.c_str());
    }

    if (const int rc = writeObserverOutputs(opt, observer))
        return rc;

    if (opt.csv) {
        std::printf("%s\n", runtime::runCsvHeader().c_str());
        std::printf("%s\n",
                    runtime::runCsvRow(opt.app, out.report).c_str());
        return 0;
    }

    std::printf("%s (threshold set %zu, weights %s, GPU %s)\n",
                opt.app.c_str(), rung, quant::toString(opt.quantMode),
                mf->executor().config().name.c_str());
    std::printf("accuracy %.1f%% (baseline %.1f%%)\n\n", 100.0 * acc,
                100.0 * app.baselineAccuracy);
    std::printf("%s\n",
                runtime::formatComparison(mf->baseline(), out.report)
                    .c_str());
    std::printf("%s", runtime::formatRunReport(out.report).c_str());
    return 0;
}

int
cmdSweep(const Options &opt)
{
    obs::Observer observer;
    obs::Observer *obs = opt.wantsObserver() ? &observer : nullptr;

    AppContext app;
    {
        auto ph = obs::Observer::phase(obs, "app-setup");
        app = makeApp(workloads::benchmarkByName(opt.app));
    }
    auto mf = std::make_unique<core::MemoryFriendlyLstm>(
        *app.model,
        core::MemoryFriendlyLstm::Config{
            gpuFor(opt.gpuName), app.spec.timingShape(), obs});
    mf->calibrate(app.data.calibrationSequences(kCalibrationSeqs));
    auto ladder = mf->calibration().ladder();
    for (core::ThresholdSet &set : ladder)
        set.quant = opt.quantMode;
    const SchemeCurve curve =
        evaluateScheme(*mf, app, opt.plan, ladder);

    if (const int rc = writeObserverOutputs(opt, observer))
        return rc;

    if (opt.csv) {
        std::printf("set,alpha_inter,alpha_intra,speedup,accuracy\n");
        for (const auto &pt : curve.points) {
            std::printf("%zu,%g,%g,%g,%g\n", pt.index,
                        pt.set.alphaInter, pt.set.alphaIntra,
                        pt.speedup, pt.accuracy);
        }
        return 0;
    }

    std::printf("%s / %s (baseline accuracy %.1f%%)\n", opt.app.c_str(),
                runtime::toString(opt.plan), 100.0 * app.baselineAccuracy);
    std::printf("%4s %12s %12s %9s %9s\n", "set", "alpha_inter",
                "alpha_intra", "speedup", "accuracy");
    for (const auto &pt : curve.points) {
        std::printf("%4zu %12.2f %12.4f %8.2fx %8.1f%%\n", pt.index,
                    pt.set.alphaInter, pt.set.alphaIntra, pt.speedup,
                    100.0 * pt.accuracy);
    }
    const std::size_t ao =
        core::selectAo(curve.points, app.baselineAccuracy, 2.0);
    std::printf("AO = set %zu, BPA = set %zu\n", ao,
                core::selectBpa(curve.points));
    return 0;
}

int
cmdMts(const Options &opt)
{
    obs::Observer observer;
    obs::Observer *obs = opt.wantsObserver() ? &observer : nullptr;

    const workloads::BenchmarkSpec &spec =
        workloads::benchmarkByName(opt.app);
    runtime::NetworkExecutor ex(gpuFor(opt.gpuName), obs);
    const core::MtsResult res = core::findMts(
        ex, {spec.hiddenSize, spec.hiddenSize, spec.length}, 10);

    if (const int rc = writeObserverOutputs(opt, observer))
        return rc;

    std::printf("%s on %s\n", opt.app.c_str(),
                ex.config().name.c_str());
    std::printf("%4s %12s %10s\n", "k", "layer time", "shared bw");
    for (std::size_t k = 1; k <= res.timesUs.size(); ++k) {
        std::printf("%4zu %10.2fms %9.0f%% %s\n", k,
                    res.timesUs[k - 1] / 1e3,
                    100.0 * res.sharedUtilization[k - 1],
                    k == res.mts ? "<- MTS" : "");
    }
    return 0;
}

int
cmdProfile(const Options &opt)
{
    obs::Observer observer;
    obs::Observer *obs = opt.wantsObserver() ? &observer : nullptr;

    AppContext app;
    {
        auto ph = obs::Observer::phase(obs, "app-setup");
        app = makeApp(workloads::benchmarkByName(opt.app));
    }
    auto mf = std::make_unique<core::MemoryFriendlyLstm>(
        *app.model,
        core::MemoryFriendlyLstm::Config{
            gpuFor(opt.gpuName), app.spec.timingShape(), obs});
    mf->calibrate(app.data.calibrationSequences(kCalibrationSeqs));
    auto ladder = mf->calibration().ladder();
    for (core::ThresholdSet &set : ladder)
        set.quant = opt.quantMode;

    // A mid-ladder rung keeps the profile cheap (no AO sweep);
    // override with --set. Matches the serve default, so a profile
    // explains what serve runs.
    const std::size_t rung = opt.set ? *opt.set : ladder.size() / 2;
    if (rung >= ladder.size()) {
        std::fprintf(stderr, "error: --set must be 0..%zu\n",
                     ladder.size() - 1);
        return 2;
    }
    runtime::ExecutionPlan probe;
    probe.kind = opt.plan;
    mf->setThresholds(
        {probe.usesInter() ? ladder[rung].alphaInter : 0.0,
         probe.usesIntra() ? ladder[rung].alphaIntra : 0.0,
         opt.quantMode});
    // Populate the division/skip statistics the planner projects.
    evalAccuracy(*mf, app);
    const core::TimingOutcome out = mf->evaluateTiming(opt.plan);

    // Re-run the planned trace with the ledger attached: attribution
    // is a pure relabeling, so timing is identical to evaluateTiming.
    runtime::NetworkExecutor ex(gpuFor(opt.gpuName), obs);
    obs::TrafficLedger ledger;
    ex.setLedger(&ledger);
    const runtime::RunReport rep =
        ex.run(mf->config().timingShape, out.plan);

    obs::ProfileReport report = obs::ProfileReport::build(
        ledger, rep.result.dramBytes, rep.result.timeUs);
    report.app = opt.app;
    report.plan = runtime::toString(opt.plan);
    report.quant = quant::toString(opt.quantMode);
    report.batch = 1;

    std::printf("%s", report.formatTable().c_str());

    if (!opt.profileOut.empty()) {
        std::ofstream os(opt.profileOut);
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         opt.profileOut.c_str());
            return 2;
        }
        report.writeJson(os);
        std::fprintf(stderr, "profile report written to %s\n",
                     opt.profileOut.c_str());
    }

    if (const int rc = writeObserverOutputs(opt, observer))
        return rc;

    if (!report.conserved()) {
        std::fprintf(stderr,
                     "error: conservation invariant broken (see "
                     "table)\n");
        return 1;
    }

    if (!opt.baselinePath.empty()) {
        std::ifstream is(opt.baselinePath);
        if (!is) {
            std::fprintf(stderr, "error: cannot read %s\n",
                         opt.baselinePath.c_str());
            return 2;
        }
        std::ostringstream text;
        text << is.rdbuf();
        obs::ProfileReport base;
        try {
            base = obs::ProfileReport::parseJsonText(text.str());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "error: %s: %s\n",
                         opt.baselinePath.c_str(), e.what());
            return 2;
        }
        // Round-trip the baseline's plan/quant strings through the
        // canonical parsers so a hand-edited or foreign report fails
        // loudly instead of diffing apples against oranges.
        if (!base.plan.empty() &&
            !runtime::planKindFromString(base.plan)) {
            std::fprintf(stderr, "error: %s: unknown plan \"%s\"\n",
                         opt.baselinePath.c_str(), base.plan.c_str());
            return 2;
        }
        if (!base.quant.empty() &&
            !quant::parseQuantMode(base.quant)) {
            std::fprintf(stderr, "error: %s: unknown quant \"%s\"\n",
                         opt.baselinePath.c_str(), base.quant.c_str());
            return 2;
        }
        const std::vector<obs::ProfileDelta> deltas =
            obs::diffReports(base, report, opt.tolerancePct);
        std::size_t regressions = 0;
        for (const auto &d : deltas)
            if (d.regression)
                ++regressions;
        if (deltas.empty()) {
            std::printf("\nbaseline %s: no per-node differences\n",
                        opt.baselinePath.c_str());
        } else {
            std::printf("\nbaseline %s: %zu node(s) changed, %zu "
                        "regression(s) beyond %.2f%%\n%s",
                        opt.baselinePath.c_str(), deltas.size(),
                        regressions, opt.tolerancePct,
                        obs::formatDeltas(deltas).c_str());
        }
        if (regressions)
            return 1;
    }
    return 0;
}

int
cmdTune(const Options &opt)
{
    obs::Observer observer;
    obs::Observer *obs = opt.wantsObserver() ? &observer : nullptr;

    AppContext app;
    {
        auto ph = obs::Observer::phase(obs, "app-setup");
        app = makeApp(workloads::benchmarkByName(opt.app));
    }
    auto mf = std::make_unique<core::MemoryFriendlyLstm>(
        *app.model,
        core::MemoryFriendlyLstm::Config{
            gpuFor(opt.gpuName), app.spec.timingShape(), obs});
    mf->calibrate(app.data.calibrationSequences(kCalibrationSeqs));
    auto ladder = mf->calibration().ladder();
    for (core::ThresholdSet &set : ladder)
        set.quant = opt.quantMode;

    // A mid-ladder rung keeps the tune cheap (no AO sweep); override
    // with --set. Both thresholds are applied so the statistics feed
    // every searchable path (tissues and row skip).
    const std::size_t rung = opt.set ? *opt.set : ladder.size() / 2;
    if (rung >= ladder.size()) {
        std::fprintf(stderr, "error: --set must be 0..%zu\n",
                     ladder.size() - 1);
        return 2;
    }
    mf->setThresholds({ladder[rung].alphaInter,
                       ladder[rung].alphaIntra, opt.quantMode});
    // Populate the division/skip statistics the search projects from.
    evalAccuracy(*mf, app);

    sched::TuneRequest treq;
    treq.shape = mf->config().timingShape;
    treq.backendId = opt.gpuName;
    treq.stats = mf->runner().stats();
    treq.mts = mf->calibration().mts;
    treq.modelHidden = mf->runner().model().config().hiddenSize;
    treq.quant = opt.quantMode;
    treq.batch = opt.batch;
    const std::uint32_t weights_crc =
        core::modelWeightsCrc(mf->runner().model());

    std::error_code ec;
    std::filesystem::create_directories(opt.cacheDir, ec);
    const std::string cachePath =
        opt.cacheDir + "/tuned_plan_" + opt.app + "_" + opt.gpuName +
        "_" + quant::toString(opt.quantMode) + "_set" +
        std::to_string(rung) + ".bin";

    sched::TuneResult res;
    {
        auto ph = obs::Observer::phase(obs, "tune");
        res = sched::tuneCached(mf->executor(), treq, weights_crc,
                                cachePath, {}, obs, opt.forceTune);
    }

    std::printf("%s on %s (threshold set %zu, weights %s, batch %zu)\n",
                opt.app.c_str(), mf->executor().config().name.c_str(),
                rung, quant::toString(opt.quantMode), treq.batch);
    std::printf("tuned plan cache: %s (%s)\n\n", cachePath.c_str(),
                res.fromCache ? "hit, search skipped"
                              : "miss, searched");

    std::printf("%-22s %12s %12s\n", "candidate", "time (ms)",
                "DRAM (MB)");
    for (const sched::Candidate &c : res.candidates) {
        std::printf("%-22s %12.3f %12.3f%s%s\n", c.label.c_str(),
                    c.timeUs / 1e3, c.dramBytes / 1e6,
                    c.label == res.chosen.label ? "  <- chosen" : "",
                    c.label == res.referenceLabel ? "  <- reference"
                                                  : "");
    }

    std::printf("\nchosen: %s (%.3f ms, %.3f MB)\n",
                res.chosen.label.c_str(), res.chosen.timeUs / 1e3,
                res.chosen.dramBytes / 1e6);
    for (std::size_t l = 0; l < res.chosenLayerLabels.size(); ++l)
        std::printf("  layer %zu: %s\n", l,
                    res.chosenLayerLabels[l].c_str());
    std::printf("reference: %s (%.3f ms, %.3f MB)\n",
                res.referenceLabel.c_str(), res.referenceTimeUs / 1e3,
                res.referenceDramBytes / 1e6);
    std::printf("dominates reference: %s\n",
                res.dominatesReference ? "yes" : "NO");

    if (!opt.profileOut.empty()) {
        std::ofstream os(opt.profileOut);
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         opt.profileOut.c_str());
            return 2;
        }
        obs::JsonWriter w(os);
        w.beginObject();
        w.key("schema").value("mflstm.tune");
        w.key("version").value(std::uint64_t{1});
        w.key("app").value(opt.app);
        w.key("backend").value(opt.gpuName);
        w.key("gpu").value(mf->executor().config().name);
        w.key("quant").value(quant::toString(opt.quantMode));
        w.key("batch").value(static_cast<std::uint64_t>(treq.batch));
        w.key("set").value(static_cast<std::uint64_t>(rung));
        w.key("from_cache").value(res.fromCache);
        w.key("chosen").beginObject();
        w.key("label").value(res.chosen.label);
        w.key("time_us").value(res.chosen.timeUs);
        w.key("dram_bytes").value(res.chosen.dramBytes);
        w.key("layers").beginArray();
        for (const std::string &l : res.chosenLayerLabels)
            w.value(l);
        w.endArray();
        w.endObject();
        w.key("reference").beginObject();
        w.key("label").value(res.referenceLabel);
        w.key("time_us").value(res.referenceTimeUs);
        w.key("dram_bytes").value(res.referenceDramBytes);
        w.endObject();
        w.key("dominates_reference").value(res.dominatesReference);
        w.key("candidates").beginArray();
        for (const sched::Candidate &c : res.candidates) {
            w.beginObject();
            w.key("label").value(c.label);
            w.key("time_us").value(c.timeUs);
            w.key("dram_bytes").value(c.dramBytes);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        os << "\n";
        std::fprintf(stderr, "tune report written to %s\n",
                     opt.profileOut.c_str());
    }

    if (const int rc = writeObserverOutputs(opt, observer))
        return rc;
    return res.dominatesReference ? 0 : 1;
}

/**
 * Schema-aware deep verification for fsck: the container layer has
 * already checked structure + checksums; this decodes the payload with
 * the same hardened loaders the runtime uses. Legacy (non-container)
 * files are tried as v1 models.
 */
void
deepVerifyArtifact(const std::string &path, std::uint32_t schema)
{
    switch (schema) {
    case io::kSchemaModel:
    case 0:  // legacy / unknown: the model loader owns the v1 format
        nn::verifyModelFile(path);
        break;
    case io::kSchemaCalibration:
        core::verifyCalibrationFile(path);
        break;
    case io::kSchemaEngineState:
        serve::verifyEngineStateFile(path);
        break;
    case io::kSchemaQuantModel:
        quant::verifyQuantizedModelFile(path);
        break;
    case io::kSchemaTunedPlan:
        sched::verifyTunedPlanFile(path);
        break;
    default:
        throw io::ArtifactError(io::ErrorKind::BadSchema,
                                "fsck: " + path +
                                    ": unknown schema kind " +
                                    std::to_string(schema));
    }
}

int
cmdFsck(const Options &opt)
{
    const io::FsckReport report =
        io::fsckDirectory(opt.cacheDir, {}, deepVerifyArtifact);

    if (report.entries.empty()) {
        std::printf("fsck: %s: no artifacts found\n",
                    opt.cacheDir.c_str());
        return 0;
    }

    std::size_t quarantined = 0;
    for (const io::FsckEntry &e : report.entries) {
        if (e.ok) {
            std::printf("ok       %-28s %s", e.format.c_str(),
                        e.path.c_str());
            if (e.chunks)
                std::printf("  (%zu chunks)", e.chunks);
            std::printf("\n");
            continue;
        }
        std::printf("CORRUPT  %-28s %s\n         reason: %s\n",
                    io::toString(e.kind), e.path.c_str(),
                    e.detail.c_str());
        if (opt.quarantineBad) {
            const std::string moved = io::quarantine(e.path);
            if (!moved.empty()) {
                std::printf("         quarantined to %s\n",
                            moved.c_str());
                ++quarantined;
            }
        }
    }

    const std::size_t bad = report.corruptCount();
    std::printf("fsck: %zu artifact(s), %zu corrupt",
                report.entries.size(), bad);
    if (opt.quarantineBad)
        std::printf(", %zu quarantined", quarantined);
    std::printf("\n");
    return bad ? 1 : 0;
}

/// set by the SIGTERM/SIGINT handler installed under serve --state-dir
std::atomic<bool> g_drainRequested{false};

extern "C" void
onDrainSignal(int)
{
    g_drainRequested.store(true, std::memory_order_relaxed);
}

int
cmdServe(const Options &opt)
{
    obs::Observer observer;
    obs::Observer *obs = opt.wantsObserver() ? &observer : nullptr;

    AppContext app;
    {
        auto ph = obs::Observer::phase(obs, "app-setup");
        app = makeApp(workloads::benchmarkByName(opt.app));
    }
    auto mf = std::make_unique<core::MemoryFriendlyLstm>(
        *app.model,
        core::MemoryFriendlyLstm::Config{
            gpuFor(opt.gpuName), app.spec.timingShape(), obs});

    const std::string calibPath = opt.stateDir + "/calibration.bin";
    const std::string enginePath = opt.stateDir + "/engine_state.bin";

    // Warm restart, half 1: a saved calibration skips the offline MTS
    // sweep + predictor collection. A corrupt or stale file is
    // quarantined and the cold path recomputes it.
    bool warmCalibration = false;
    if (!opt.stateDir.empty() &&
        std::filesystem::exists(calibPath)) {
        try {
            core::loadCalibration(*mf, calibPath, {}, obs);
            warmCalibration = true;
            std::fprintf(stderr, "[serve] calibration restored from %s\n",
                         calibPath.c_str());
        } catch (const io::ArtifactError &e) {
            const std::string moved = io::quarantine(calibPath);
            std::fprintf(stderr,
                         "[serve] %s rejected (%s); quarantined to %s; "
                         "recalibrating\n",
                         calibPath.c_str(), io::toString(e.kind()),
                         moved.empty() ? "(rename failed)"
                                       : moved.c_str());
        }
    }
    if (!warmCalibration)
        mf->calibrate(app.data.calibrationSequences(kCalibrationSeqs));
    auto ladder = mf->calibration().ladder();
    for (core::ThresholdSet &set : ladder)
        set.quant = opt.quantMode;

    // A mid-ladder rung keeps startup cheap (no AO sweep); override
    // with --set.
    const std::size_t rung =
        opt.set ? *opt.set : ladder.size() / 2;
    if (rung >= ladder.size()) {
        std::fprintf(stderr, "error: --set must be 0..%zu\n",
                     ladder.size() - 1);
        return 2;
    }
    runtime::ExecutionPlan probe;
    probe.kind = opt.plan;
    mf->setThresholds(
        {probe.usesInter() ? ladder[rung].alphaInter : 0.0,
         probe.usesIntra() ? ladder[rung].alphaIntra : 0.0,
         opt.quantMode});
    // Populate the division/skip statistics the planner projects.
    evalAccuracy(*mf, app);

    serve::InferenceEngine::Options eopts;
    eopts.maxBatch = opt.batch;
    eopts.workers = opt.workers;
    eopts.plan = opt.plan;
    eopts.observer = obs;
    eopts.queueCapacity = opt.queueCapacity;
    eopts.admission = opt.admission;
    eopts.admitTimeoutMs = opt.admitTimeoutMs;
    eopts.maxRetries = opt.retries;
    eopts.tunePlans = opt.tuned;
    eopts.tuneCacheDir = opt.stateDir;
    eopts.backendId = opt.gpuName;

    // Must outlive the engine (workers consult it per batch/request).
    std::optional<serve::ProbabilisticFaultInjector> injector;
    if (opt.faultRate > 0.0) {
        injector.emplace(opt.faultRate, opt.chaosSeed);
        eopts.faultInjector = &*injector;
    }

    // Warm restart, half 2: a saved engine state skips the per-rung
    // snapshots (and, under --governor, the AO/BPA locating sweep).
    std::unique_ptr<serve::InferenceEngine> engine;
    if (!opt.stateDir.empty() &&
        std::filesystem::exists(enginePath)) {
        try {
            const serve::EngineWarmState warm =
                serve::loadEngineState(enginePath, {}, obs);
            engine = std::make_unique<serve::InferenceEngine>(
                *mf, eopts, warm);
            std::fprintf(stderr,
                         "[serve] engine warm-started from %s "
                         "(%zu rung(s))\n",
                         enginePath.c_str(), engine->ladder().size());
        } catch (const io::ArtifactError &e) {
            const std::string moved = io::quarantine(enginePath);
            std::fprintf(stderr,
                         "[serve] %s rejected (%s); quarantined to %s; "
                         "cold start\n",
                         enginePath.c_str(), io::toString(e.kind()),
                         moved.empty() ? "(rename failed)"
                                       : moved.c_str());
        }
    }
    if (!engine) {
        if (opt.governor) {
            // Sweep the full ladder once to locate this app's AO and
            // BPA sets, then serve on the AO->BPA slice between them.
            const SchemeCurve curve =
                evaluateScheme(*mf, app, opt.plan, ladder);
            eopts.governorLadder = core::aoToBpaLadder(
                curve.points, app.baselineAccuracy, 2.0);
            eopts.planningSequences =
                app.data.calibrationSequences(kCalibrationSeqs);
        }
        engine = std::make_unique<serve::InferenceEngine>(*mf, eopts);
    }
    serve::Session session = engine->session();

    if (!opt.stateDir.empty()) {
        std::signal(SIGTERM, onDrainSignal);
        std::signal(SIGINT, onDrainSignal);
    }

    // Open-loop arrivals: submit on a fixed clock regardless of
    // completion, cycling through the calibration sequences.
    const auto seqs = app.data.calibrationSequences(kCalibrationSeqs);
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(opt.requests);
    for (std::size_t i = 0; i < opt.requests; ++i) {
        if (g_drainRequested.load(std::memory_order_relaxed)) {
            std::fprintf(stderr,
                         "[serve] drain requested after %zu of %zu "
                         "requests; stopping admissions\n",
                         i, opt.requests);
            break;
        }
        futures.push_back(session.infer(seqs[i % seqs.size()],
                                        opt.deadlineMs));
        if (opt.arrivalUs > 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(opt.arrivalUs));
    }

    // batch size -> simulated weight-DRAM bytes per sequence
    std::map<std::size_t, double> weight_by_batch;
    std::map<serve::Status, std::uint64_t> by_status;
    for (auto &f : futures) {
        const serve::Response r = f.get();
        ++by_status[r.status];
        if (r.status == serve::Status::Ok)
            weight_by_batch[r.batch] = r.weightDramBytesPerSeq;
    }

    // Graceful exit: finish everything queued, then (with --state-dir)
    // persist calibration + engine warm state for the next start.
    if (!opt.stateDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt.stateDir, ec);
        engine->drainAndSaveState(enginePath);
        core::saveCalibration(*mf, calibPath);
        std::fprintf(stderr, "[serve] warm state saved to %s\n",
                     opt.stateDir.c_str());
    } else {
        engine->shutdown();
    }
    if (g_drainRequested.load(std::memory_order_relaxed))
        std::fprintf(stderr,
                     "[serve] drained cleanly after signal\n");

    const serve::InferenceEngine::Stats st = engine->stats();
    std::printf("%s / %s on %s (threshold set %zu)\n", opt.app.c_str(),
                runtime::toString(opt.plan), gpuFor(opt.gpuName).name.c_str(),
                rung);
    std::printf("served %llu requests in %llu batches "
                "(mean batch %.2f, max %zu, workers %zu)\n",
                static_cast<unsigned long long>(st.completed),
                static_cast<unsigned long long>(st.batches),
                st.meanBatchSize, st.maxBatchObserved, opt.workers);
    std::printf("wall latency p50 %.3f ms, p90 %.3f ms, p99 %.3f ms\n",
                engine->latencyQuantileMs(0.50),
                engine->latencyQuantileMs(0.90),
                engine->latencyQuantileMs(0.99));

    // Lifecycle decomposition from the per-request histograms.
    const auto stage_q = [&](const char *name, double q) {
        const obs::Histogram *h =
            engine->observer().metrics().findHistogram(name);
        return h ? h->quantile(q) : 0.0;
    };
    std::printf("\nrequest lifecycle (ms):\n");
    std::printf("%-12s %10s %10s\n", "stage", "p50", "p95");
    std::printf("%-12s %10.3f %10.3f\n", "queue",
                stage_q("serve.queue_ms", 0.50),
                stage_q("serve.queue_ms", 0.95));
    std::printf("%-12s %10.3f %10.3f\n", "batch-wait",
                stage_q("serve.batch_wait_ms", 0.50),
                stage_q("serve.batch_wait_ms", 0.95));
    std::printf("%-12s %10.3f %10.3f\n", "exec",
                stage_q("serve.exec_ms", 0.50),
                stage_q("serve.exec_ms", 0.95));

    std::printf("\nstatus distribution:\n");
    for (const auto &[status, n] : by_status)
        std::printf("  %-18s %llu\n", serve::toString(status),
                    static_cast<unsigned long long>(n));
    std::printf("overload control: admission %s, queue high-water %zu, "
                "shed-before-run %llu, late %llu, rejected %llu "
                "(evicted %llu)\n",
                serve::toString(opt.admission), st.queueHighWater,
                static_cast<unsigned long long>(st.shedBeforeRun),
                static_cast<unsigned long long>(st.lateCompletions),
                static_cast<unsigned long long>(st.rejected),
                static_cast<unsigned long long>(st.evicted));
    if (opt.faultRate > 0.0) {
        std::printf("fault tolerance: injected %llu, retries %llu, "
                    "failed %llu, worker restarts %llu "
                    "(chaos seed %llu)\n",
                    static_cast<unsigned long long>(injector->injected()),
                    static_cast<unsigned long long>(st.retries),
                    static_cast<unsigned long long>(st.failed),
                    static_cast<unsigned long long>(st.workerRestarts),
                    static_cast<unsigned long long>(opt.chaosSeed));
    }
    if (opt.governor) {
        std::printf("governor: ladder %zu rungs, steps up %llu / down "
                    "%llu, final rung %zu\n",
                    engine->ladder().size(),
                    static_cast<unsigned long long>(st.governorStepsUp),
                    static_cast<unsigned long long>(st.governorStepsDown),
                    engine->activeRung());
    }
    if (opt.deadlineMs > 0.0) {
        std::printf("deadline %.1f ms missed by %llu requests\n",
                    opt.deadlineMs,
                    static_cast<unsigned long long>(st.deadlineMisses));
    }
    std::printf("\nweight-matrix DRAM per sequence (simulated, "
                "amortised over the batch):\n");
    std::printf("%6s %16s\n", "batch", "weight MB/seq");
    for (const auto &[b, bytes] : weight_by_batch)
        std::printf("%6zu %16.3f\n", b, bytes / 1e6);

    return writeObserverOutputs(opt, observer);
}

int
cmdFleet(const Options &opt)
{
    obs::Observer observer;
    obs::Observer *obs = opt.wantsObserver() ? &observer : nullptr;

    if (opt.chaos && opt.ticks < 8) {
        std::fprintf(stderr,
                     "error: --chaos needs --ticks >= 8 (the standard "
                     "plan places one event per horizon quarter)\n");
        return 2;
    }

    AppContext app;
    {
        auto ph = obs::Observer::phase(obs, "app-setup");
        app = makeApp(workloads::benchmarkByName(opt.app));
    }
    auto mf = std::make_unique<core::MemoryFriendlyLstm>(
        *app.model,
        core::MemoryFriendlyLstm::Config{
            gpuFor(opt.gpuName), app.spec.timingShape(), obs});
    mf->calibrate(app.data.calibrationSequences(kCalibrationSeqs));
    auto ladder = mf->calibration().ladder();
    for (core::ThresholdSet &set : ladder)
        set.quant = opt.quantMode;
    const std::size_t rung = opt.set ? *opt.set : ladder.size() / 2;
    if (rung >= ladder.size()) {
        std::fprintf(stderr, "error: --set must be 0..%zu\n",
                     ladder.size() - 1);
        return 2;
    }
    runtime::ExecutionPlan probe;
    probe.kind = opt.plan;
    mf->setThresholds(
        {probe.usesInter() ? ladder[rung].alphaInter : 0.0,
         probe.usesIntra() ? ladder[rung].alphaIntra : 0.0,
         opt.quantMode});
    evalAccuracy(*mf, app);

    fleet::FleetOptions fopts;
    fopts.replicas = opt.replicas;
    fopts.policy = opt.policy;
    fopts.failover = opt.failover;
    fopts.storeDir = opt.storeDir;
    fopts.observer = obs;
    fopts.engine.maxBatch = opt.batch;
    fopts.engine.workers = opt.workers;
    fopts.engine.plan = opt.plan;
    fopts.engine.maxRetries = opt.retries;
    fopts.engine.backendId = opt.gpuName;
    if (opt.governor) {
        const SchemeCurve curve =
            evaluateScheme(*mf, app, opt.plan, ladder);
        fopts.engine.governorLadder = core::aoToBpaLadder(
            curve.points, app.baselineAccuracy, 2.0);
        fopts.engine.planningSequences =
            app.data.calibrationSequences(kCalibrationSeqs);
    }
    // Two stock tenants exercise the SLO classes: interactive rides
    // the --deadline-ms budget at high priority, batch is best-effort.
    fopts.slos.push_back(
        fleet::SloClass{"interactive", 10, opt.deadlineMs});
    fopts.slos.push_back(fleet::SloClass{"batch", 0, 0.0});

    fleet::Fleet f(*mf, fopts);
    if (opt.chaos)
        f.setChaosPlan(fleet::ChaosPlan::standard(
            opt.chaosSeed, opt.replicas, opt.ticks));

    // Drive loop: the base --requests load spreads evenly over the
    // ticks; chaos flash crowds add their bursts on top.
    const auto seqs = app.data.calibrationSequences(kCalibrationSeqs);
    std::size_t next = 0;
    std::size_t eventsApplied = 0;
    for (std::size_t t = 0; t < opt.ticks; ++t) {
        const fleet::Fleet::TickReport rep = f.tick();
        eventsApplied += rep.applied.size();
        for (const fleet::ChaosEvent &e : rep.applied)
            std::fprintf(stderr, "[fleet] tick %llu: %s -> r%zu\n",
                         static_cast<unsigned long long>(rep.tick),
                         fleet::toString(e.kind), e.replica);
        std::size_t n = opt.requests / opt.ticks +
                        (t < opt.requests % opt.ticks ? 1 : 0);
        n += rep.flashCrowdBurst;
        for (std::size_t k = 0; k < n; ++k) {
            fleet::FleetRequest req;
            req.tokens = seqs[next % seqs.size()];
            req.sessionId = "session-" + std::to_string(next % 8);
            req.tenant = next % 2 == 0 ? "interactive" : "batch";
            f.submit(std::move(req));
            ++next;
        }
    }
    // Quiet ticks let scheduled restarts land so parked work (with
    // failover on) finds a recovered replica before the final drain.
    for (int t = 0; t < 6; ++t)
        f.tick();
    f.drain();
    const fleet::Fleet::Stats st = f.stats();
    const double avail = f.availability();

    std::printf("%s / %s on %s (threshold set %zu)\n", opt.app.c_str(),
                runtime::toString(opt.plan),
                gpuFor(opt.gpuName).name.c_str(), rung);
    std::printf("fleet: %zu replicas, policy %s, failover %s\n",
                f.replicaCount(), fleet::toString(opt.policy),
                opt.failover ? "on" : "off");
    if (opt.chaos) {
        std::printf("chaos: seed %llu, %zu of %zu events applied over "
                    "%zu ticks (replay: same seed => same plan)\n",
                    static_cast<unsigned long long>(opt.chaosSeed),
                    eventsApplied, f.chaosPlan().events.size(),
                    opt.ticks);
        std::printf("%s", f.chaosPlan().describe().c_str());
    }
    std::printf("submitted %llu, completed %llu, ok %llu, failed %llu "
                "(availability %.2f%%)\n",
                static_cast<unsigned long long>(st.submitted),
                static_cast<unsigned long long>(st.completed),
                static_cast<unsigned long long>(st.ok),
                static_cast<unsigned long long>(st.failed),
                avail * 100.0);
    std::printf("failover re-dispatches %llu, hedges %llu (wins %llu), "
                "parked %llu, session failovers %llu\n",
                static_cast<unsigned long long>(st.failovers),
                static_cast<unsigned long long>(st.hedges),
                static_cast<unsigned long long>(st.hedgeWins),
                static_cast<unsigned long long>(st.parked),
                static_cast<unsigned long long>(
                    f.router().sessionFailovers()));
    for (std::size_t i = 0; i < f.replicaCount(); ++i) {
        fleet::Replica &r = f.replica(i);
        const fleet::Replica::Counters &c = r.counters();
        std::printf("  %-4s %-10s kills %llu, restarts %llu "
                    "(cold %llu), heartbeat misses %llu, breaker "
                    "trips %llu\n",
                    r.name().c_str(), fleet::toString(r.state()),
                    static_cast<unsigned long long>(c.kills),
                    static_cast<unsigned long long>(c.restarts),
                    static_cast<unsigned long long>(c.coldRecoveries),
                    static_cast<unsigned long long>(c.heartbeatMisses),
                    static_cast<unsigned long long>(r.breaker().trips));
    }
    f.shutdown();

    const std::uint64_t lost = st.submitted - st.completed;
    if (lost > 0)
        std::fprintf(stderr,
                     "error: %llu request(s) lost without a terminal "
                     "response\n",
                     static_cast<unsigned long long>(lost));
    const int rc = writeObserverOutputs(opt, observer);
    return lost > 0 ? 1 : rc;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    Options opt;
    opt.command = argv[1];
    if (opt.command == "--help" || opt.command == "-h" ||
        opt.command == "help") {
        printUsage(stdout);
        return 0;
    }
    if (opt.command != "list" && opt.command != "run" &&
        opt.command != "sweep" && opt.command != "mts" &&
        opt.command != "serve" && opt.command != "fleet" &&
        opt.command != "profile" && opt.command != "tune" &&
        opt.command != "fsck" && opt.command != "backends") {
        std::fprintf(stderr, "unknown command: %s\n",
                     opt.command.c_str());
        return usage();
    }

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            return 0;
        } else if (arg == "--app") {
            const char *v = next();
            if (!v)
                return usage();
            opt.app = v;
        } else if (arg == "--plan") {
            const char *v = next();
            const auto kind = v ? parsePlan(v) : std::nullopt;
            if (!kind) {
                std::fprintf(stderr, "bad --plan value: %s\n",
                             v ? v : "(missing)");
                return usage();
            }
            if (*kind == runtime::PlanKind::Tuned) {
                std::fprintf(stderr,
                             "--plan tuned is not a preset; run the "
                             "tune subcommand (or serve --tuned)\n");
                return usage();
            }
            opt.plan = *kind;
        } else if (arg == "--set") {
            const char *v = next();
            char *end = nullptr;
            const unsigned long n =
                v ? std::strtoul(v, &end, 10) : 0;
            if (!v || end == v || *end != '\0') {
                std::fprintf(stderr, "bad --set value: %s\n",
                             v ? v : "(missing)");
                return usage();
            }
            opt.set = static_cast<std::size_t>(n);
        } else if (arg == "--quant") {
            const char *v = next();
            const auto mode =
                v ? quant::parseQuantMode(v) : std::nullopt;
            if (!mode) {
                std::fprintf(stderr, "bad --quant value: %s\n",
                             v ? v : "(missing)");
                return usage();
            }
            opt.quantMode = *mode;
        } else if (arg == "--gpu") {
            const char *v = next();
            if (!v || (std::strcmp(v, "tx1") != 0 &&
                       std::strcmp(v, "tx2") != 0)) {
                std::fprintf(stderr, "bad --gpu value: %s\n",
                             v ? v : "(missing)");
                return usage();
            }
            opt.gpuName = v;
        } else if (arg == "--backend") {
            const char *v = next();
            if (!v || !hw::registry().contains(v)) {
                std::string known;
                for (const std::string &n : hw::registry().names())
                    known += (known.empty() ? "" : "|") + n;
                std::fprintf(stderr,
                             "unknown backend: %s (known: %s)\n",
                             v ? v : "(missing)", known.c_str());
                return usage();
            }
            opt.gpuName = v;
        } else if (arg == "--admission") {
            const char *v = next();
            if (v && std::strcmp(v, "reject") == 0) {
                opt.admission = serve::AdmissionPolicy::RejectNew;
            } else if (v && std::strcmp(v, "drop-oldest") == 0) {
                opt.admission = serve::AdmissionPolicy::DropOldest;
            } else if (v && std::strcmp(v, "block") == 0) {
                opt.admission = serve::AdmissionPolicy::BlockWithTimeout;
            } else {
                std::fprintf(stderr, "bad --admission value: %s\n",
                             v ? v : "(missing)");
                return usage();
            }
        } else if (arg == "--state-dir") {
            const char *v = next();
            if (!v)
                return usage();
            opt.stateDir = v;
        } else if (arg == "--store-dir") {
            const char *v = next();
            if (!v)
                return usage();
            opt.storeDir = v;
        } else if (arg == "--policy") {
            const char *v = next();
            if (v && std::strcmp(v, "affinity") == 0) {
                opt.policy = fleet::RoutingPolicy::SessionAffinity;
            } else if (v && std::strcmp(v, "round-robin") == 0) {
                opt.policy = fleet::RoutingPolicy::RoundRobin;
            } else if (v && std::strcmp(v, "least-loaded") == 0) {
                opt.policy = fleet::RoutingPolicy::LeastLoaded;
            } else {
                std::fprintf(stderr, "bad --policy value: %s\n",
                             v ? v : "(missing)");
                return usage();
            }
        } else if (arg == "--chaos") {
            opt.chaos = true;
        } else if (arg == "--no-failover") {
            opt.failover = false;
        } else if (arg == "--chaos-seed") {
            const char *v = next();
            char *end = nullptr;
            const unsigned long long n =
                v ? std::strtoull(v, &end, 10) : 0;
            if (!v || end == v || *end != '\0') {
                std::fprintf(stderr, "bad --chaos-seed value: %s\n",
                             v ? v : "(missing)");
                return usage();
            }
            opt.chaosSeed = n;
        } else if (arg == "--cache-dir") {
            const char *v = next();
            if (!v)
                return usage();
            opt.cacheDir = v;
        } else if (arg == "--quarantine") {
            opt.quarantineBad = true;
        } else if (arg == "--governor") {
            opt.governor = true;
        } else if (arg == "--tuned") {
            opt.tuned = true;
        } else if (arg == "--force") {
            opt.forceTune = true;
        } else if (arg == "--requests" || arg == "--batch" ||
                   arg == "--workers" || arg == "--arrival-us" ||
                   arg == "--queue-capacity" || arg == "--retries" ||
                   arg == "--replicas" || arg == "--ticks") {
            const char *v = next();
            char *end = nullptr;
            const unsigned long n = v ? std::strtoul(v, &end, 10) : 0;
            if (!v || end == v || *end != '\0') {
                std::fprintf(stderr, "bad %s value: %s\n", arg.c_str(),
                             v ? v : "(missing)");
                return usage();
            }
            if ((arg == "--requests" || arg == "--batch" ||
                 arg == "--workers" || arg == "--replicas" ||
                 arg == "--ticks") &&
                n == 0) {
                std::fprintf(stderr, "%s must be >= 1\n", arg.c_str());
                return usage();
            }
            if (arg == "--requests")
                opt.requests = n;
            else if (arg == "--batch")
                opt.batch = n;
            else if (arg == "--workers")
                opt.workers = n;
            else if (arg == "--queue-capacity")
                opt.queueCapacity = n;
            else if (arg == "--retries")
                opt.retries = static_cast<int>(n);
            else if (arg == "--replicas")
                opt.replicas = n;
            else if (arg == "--ticks")
                opt.ticks = n;
            else
                opt.arrivalUs = n;
        } else if (arg == "--deadline-ms" || arg == "--admit-timeout-ms" ||
                   arg == "--fault-rate") {
            const char *v = next();
            char *end = nullptr;
            const double x = v ? std::strtod(v, &end) : 0.0;
            if (!v || end == v || *end != '\0' || x < 0.0) {
                std::fprintf(stderr, "bad %s value: %s\n", arg.c_str(),
                             v ? v : "(missing)");
                return usage();
            }
            if (arg == "--deadline-ms")
                opt.deadlineMs = x;
            else if (arg == "--admit-timeout-ms")
                opt.admitTimeoutMs = x;
            else
                opt.faultRate = x;
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--trace-csv") {
            const char *v = next();
            if (!v)
                return usage();
            opt.traceCsv = v;
        } else if (arg == "--trace-out") {
            const char *v = next();
            if (!v)
                return usage();
            opt.traceOut = v;
        } else if (arg == "--metrics-out") {
            const char *v = next();
            if (!v)
                return usage();
            opt.metricsOut = v;
        } else if (arg == "--metrics-format") {
            const char *v = next();
            if (!v || (std::strcmp(v, "json") != 0 &&
                       std::strcmp(v, "prom") != 0)) {
                std::fprintf(stderr, "bad --metrics-format value: %s\n",
                             v ? v : "(missing)");
                return usage();
            }
            opt.metricsFormat = v;
        } else if (arg == "--out") {
            const char *v = next();
            if (!v)
                return usage();
            opt.profileOut = v;
        } else if (arg == "--baseline") {
            const char *v = next();
            if (!v)
                return usage();
            opt.baselinePath = v;
        } else if (arg == "--tolerance-pct") {
            const char *v = next();
            char *end = nullptr;
            const double x = v ? std::strtod(v, &end) : 0.0;
            if (!v || end == v || *end != '\0' || x < 0.0) {
                std::fprintf(stderr, "bad --tolerance-pct value: %s\n",
                             v ? v : "(missing)");
                return usage();
            }
            opt.tolerancePct = x;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return usage();
        }
    }

    try {
        if (opt.command == "list")
            return cmdList();
        if (opt.command == "backends")
            return cmdBackends();
        if (opt.command == "run")
            return cmdRun(opt);
        if (opt.command == "sweep")
            return cmdSweep(opt);
        if (opt.command == "serve")
            return cmdServe(opt);
        if (opt.command == "fleet")
            return cmdFleet(opt);
        if (opt.command == "profile")
            return cmdProfile(opt);
        if (opt.command == "tune")
            return cmdTune(opt);
        if (opt.command == "fsck")
            return cmdFsck(opt);
        return cmdMts(opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
