/**
 * @file
 * Machine-translation trade-off explorer: the hardest Table II workload
 * for these approximations (every source token must be carried to the
 * target half). Sweeps the threshold ladder for all three schemes and
 * prints the full trade-off table, then shows what each scheme can
 * deliver under a 2% accuracy budget.
 *
 * Build & run:  ./build/examples/translation_tradeoff
 */

#include <cstdio>

#include "core/api.hh"
#include "workloads/datagen.hh"

int
main()
{
    using namespace mflstm;

    const workloads::BenchmarkSpec &spec =
        workloads::benchmarkByName("MT");
    const workloads::TaskData data = workloads::makeTask(spec, 300, 80);
    const nn::LstmModel model =
        workloads::trainAccuracyModel(spec, data, 12);
    const double base_acc = workloads::exactAccuracy(model, data);

    core::MemoryFriendlyLstm mf(
        model, {gpu::GpuConfig::tegraX1(), spec.timingShape()});
    const auto &cal = mf.calibrate(data.calibrationSequences(30));
    const auto ladder = cal.ladder();

    std::printf("English->French-like translation (4-layer LSTM, "
                "hidden %zu)\n",
                spec.hiddenSize);
    std::printf("baseline: %.2f ms / sentence, next-token accuracy "
                "%.1f%%\n\n",
                mf.baseline().result.timeUs / 1e3, 100.0 * base_acc);

    const runtime::PlanKind kinds[] = {runtime::PlanKind::InterCell,
                                       runtime::PlanKind::IntraCellHw,
                                       runtime::PlanKind::Combined};

    for (runtime::PlanKind kind : kinds) {
        runtime::ExecutionPlan probe;
        probe.kind = kind;
        std::printf("%-14s", runtime::toString(kind));
        std::vector<core::OperatingPoint> points;
        for (std::size_t i = 0; i < ladder.size(); ++i) {
            mf.setThresholds(
                {probe.usesInter() ? ladder[i].alphaInter : 0.0,
                 probe.usesIntra() ? ladder[i].alphaIntra : 0.0});
            core::OperatingPoint pt;
            pt.index = i;
            pt.accuracy = core::approxLmNextTokenAccuracy(
                mf.runner(), data.lm.test);
            pt.speedup = mf.evaluateTiming(kind).speedup;
            points.push_back(pt);
            if (i % 2 == 0)
                std::printf("  %4.2fx/%4.1f%%", pt.speedup,
                            100.0 * pt.accuracy);
        }
        const std::size_t ao = core::selectAo(points, base_acc, 2.0);
        std::printf("  | AO: set %zu -> %.2fx\n", ao,
                    points[ao].speedup);
    }

    std::printf("\nTranslation carries every source token across the "
                "separator, so aggressive\nthresholds quickly cost "
                "accuracy — the scheme picks conservative sets here,\n"
                "while bandwidth-bound workloads like PTB tolerate much "
                "more (see\nbench_fig19_tradeoffs).\n");
    return 0;
}
