/**
 * @file
 * A simulated Intelligent Personal Assistant: the question-answering
 * scenario the paper's introduction motivates. A BABI-like QA model
 * answers user queries under a response-latency budget; the
 * user-oriented (UO) controller adapts the two thresholds to each
 * user's stated accuracy preference and reports the per-user operating
 * point, latency and answer accuracy.
 *
 * Build & run:  ./build/examples/ipa_assistant
 */

#include <cstdio>

#include "core/api.hh"
#include "study/study.hh"
#include "workloads/datagen.hh"

int
main()
{
    using namespace mflstm;

    const workloads::BenchmarkSpec &spec =
        workloads::benchmarkByName("BABI");
    const workloads::TaskData data = workloads::makeTask(spec, 300, 80);
    const nn::LstmModel model =
        workloads::trainAccuracyModel(spec, data, 12);
    const double base_acc = workloads::exactAccuracy(model, data);

    core::MemoryFriendlyLstm mf(
        model, {gpu::GpuConfig::tegraX1(), spec.timingShape()});
    const auto &cal = mf.calibrate(data.calibrationSequences(30));
    const double base_ms = mf.baseline().result.timeUs / 1e3;

    std::printf("IPA question answering on a simulated Tegra X1\n");
    std::printf("baseline answer latency %.2f ms, accuracy %.1f%%\n\n",
                base_ms, 100.0 * base_acc);

    // Evaluate the tuning space once.
    std::vector<core::OperatingPoint> points;
    const auto ladder = cal.ladder();
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        mf.setThresholds(ladder[i]);
        core::OperatingPoint pt;
        pt.index = i;
        pt.set = ladder[i];
        pt.accuracy = core::approxClassificationAccuracy(
            mf.runner(), data.cls.test);
        pt.speedup =
            mf.evaluateTiming(runtime::PlanKind::Combined).speedup;
        points.push_back(pt);
    }

    // Three users with different accuracy preferences walk up to the
    // assistant; the UO controller picks each one's operating point.
    struct Persona
    {
        const char *name;
        double minAccuracy;  // stated preference
    };
    const Persona personas[] = {
        {"precision-first Paula", base_acc - 0.005},
        {"balanced Bob", base_acc - 0.03},
        {"speed-hungry Sam", base_acc - 0.10},
    };

    std::printf("%-24s %6s %10s %10s %10s\n", "user", "set", "latency",
                "speedup", "accuracy");
    for (const Persona &p : personas) {
        const std::size_t idx =
            core::selectForPreference(points, p.minAccuracy);
        std::printf("%-24s %6zu %8.2fms %9.2fx %9.1f%%\n", p.name, idx,
                    base_ms / points[idx].speedup, points[idx].speedup,
                    100.0 * points[idx].accuracy);
    }

    // And the population-level view the paper's user study takes.
    const std::size_t ao = core::selectAo(points, base_acc, 2.0);
    const std::size_t bpa = core::selectBpa(points);
    const study::StudyResult res =
        study::runUserStudy(points, base_acc, ao, bpa);
    std::printf("\n30-user replay study (mean satisfaction, 1-5): "
                "Baseline %.2f | AO %.2f | BPA %.2f | UO %.2f\n",
                res.score(study::Scheme::Baseline),
                res.score(study::Scheme::Ao),
                res.score(study::Scheme::Bpa),
                res.score(study::Scheme::Uo));
    return 0;
}
