/**
 * @file
 * Porting to a different mobile GPU: the offline calibration (Fig. 10)
 * is the only GPU-specific step. This example runs the same PTB model
 * on the Tegra X1 and on a TX2-like part, showing how the MTS and the
 * gains shift with the hardware, and how the gains scale with the
 * input set (the paper's scalability claim).
 *
 * Build & run:  ./build/examples/custom_gpu
 */

#include <cstdio>

#include "core/api.hh"
#include "workloads/datagen.hh"

namespace {

using namespace mflstm;

void
runOn(const gpu::GpuConfig &cfg, const workloads::BenchmarkSpec &spec,
      const workloads::TaskData &data, const nn::LstmModel &model,
      double base_acc)
{
    core::MemoryFriendlyLstm mf(model, {cfg, spec.timingShape()});
    const auto &cal = mf.calibrate(data.calibrationSequences(30));

    // AO point of the combined scheme.
    const auto ladder = cal.ladder();
    std::vector<core::OperatingPoint> points;
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        mf.setThresholds(ladder[i]);
        core::OperatingPoint pt;
        pt.index = i;
        pt.accuracy = core::approxLmNextTokenAccuracy(mf.runner(),
                                                      data.lm.test);
        pt.speedup =
            mf.evaluateTiming(runtime::PlanKind::Combined).speedup;
        points.push_back(pt);
    }
    const std::size_t ao = core::selectAo(points, base_acc, 2.0);

    std::printf("%-42s MTS=%zu  baseline %7.2f ms  AO %4.2fx\n",
                cfg.name.c_str(), cal.mts,
                mf.baseline().result.timeUs / 1e3, points[ao].speedup);
}

} // anonymous namespace

int
main()
{
    using namespace mflstm;

    workloads::BenchmarkSpec spec = workloads::benchmarkByName("PTB");
    const workloads::TaskData data = workloads::makeTask(spec, 300, 80);
    const nn::LstmModel model =
        workloads::trainAccuracyModel(spec, data, 20);
    const double base_acc = workloads::exactAccuracy(model, data);
    std::printf("PTB language model, accuracy-model baseline %.1f%%\n\n",
                100.0 * base_acc);

    std::printf("Same model, two GPUs:\n");
    runOn(gpu::GpuConfig::tegraX1(), spec, data, model, base_acc);
    runOn(gpu::GpuConfig::tegraX2Like(), spec, data, model, base_acc);

    std::printf("\nScalability with the input set (Tegra X1, combined "
                "scheme at a fixed\nconservative threshold set):\n");
    for (std::size_t length : {50u, 100u, 200u, 400u}) {
        workloads::BenchmarkSpec scaled = spec;
        scaled.length = length;
        core::MemoryFriendlyLstm mf(
            model, {gpu::GpuConfig::tegraX1(), scaled.timingShape()});
        const auto &cal = mf.calibrate(data.calibrationSequences(30));
        const auto ladder = cal.ladder();
        // A conservative rung: short layers cannot yet divide up to
        // the MTS there, which is exactly the scaling effect at issue.
        mf.setThresholds(ladder[3]);
        core::approxLmNextTokenAccuracy(mf.runner(), data.lm.test);
        const auto out = mf.evaluateTiming(runtime::PlanKind::Combined);
        std::printf("  length %4zu: baseline %8.2f ms -> %8.2f ms "
                    "(%.2fx, %6.1f ms saved)\n",
                    length, mf.baseline().result.timeUs / 1e3,
                    out.report.result.timeUs / 1e3, out.speedup,
                    (mf.baseline().result.timeUs -
                     out.report.result.timeUs) / 1e3);
    }
    std::printf("\nThe speedup factor is sustained as the input set "
                "grows — the absolute time\nand energy saved scale "
                "linearly with it, which is the paper's scalability\n"
                "claim (PTB, the longest/largest workload, benefits "
                "most in Fig. 14).\n");
    return 0;
}
