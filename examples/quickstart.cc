/**
 * @file
 * Quickstart: the whole memory-friendly-LSTM flow in ~60 lines.
 *
 *  1. train a small LSTM classifier on a synthetic sentiment task;
 *  2. wrap it in MemoryFriendlyLstm with a full-size Table II timing
 *     shape and a Tegra X1 GPU model;
 *  3. calibrate (MTS sweep, threshold limits, link predictors);
 *  4. pick the AO operating point (fastest within 2% accuracy loss);
 *  5. report speedup, energy saving and accuracy.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/api.hh"
#include "workloads/datagen.hh"

int
main()
{
    using namespace mflstm;

    // 1. Synthetic IMDB-like task + a small trained accuracy model.
    const workloads::BenchmarkSpec &spec =
        workloads::benchmarkByName("IMDB");
    const workloads::TaskData data = workloads::makeTask(spec, 300, 80);
    const nn::LstmModel model =
        workloads::trainAccuracyModel(spec, data, 12);
    const double base_acc = workloads::exactAccuracy(model, data);
    std::printf("trained accuracy model: %.1f%% on the synthetic "
                "sentiment task\n",
                100.0 * base_acc);

    // 2. The public facade: accuracy model + full-size timing shape.
    core::MemoryFriendlyLstm mf(
        model, {gpu::GpuConfig::tegraX1(), spec.timingShape()});
    std::printf("baseline (Algorithm 1) inference: %.2f ms, %.1f mJ\n",
                mf.baseline().result.timeUs / 1e3,
                mf.baseline().result.energy.totalJ() * 1e3);

    // 3. Offline calibration (Fig. 10, ops 1-4).
    const auto &cal = mf.calibrate(data.calibrationSequences(30));
    std::printf("calibrated: MTS=%zu, alpha_inter<=%.1f, "
                "alpha_intra<=%.3f\n",
                cal.mts, cal.limits.maxInter, cal.limits.maxIntra);

    // 4. Sweep the threshold ladder and pick AO.
    std::vector<core::OperatingPoint> points;
    const auto ladder = cal.ladder();
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        mf.setThresholds(ladder[i]);
        core::OperatingPoint pt;
        pt.index = i;
        pt.accuracy = core::approxClassificationAccuracy(
            mf.runner(), data.cls.test);
        pt.speedup =
            mf.evaluateTiming(runtime::PlanKind::Combined).speedup;
        points.push_back(pt);
    }
    const std::size_t ao = core::selectAo(points, base_acc, 2.0);

    // 5. Report the chosen operating point.
    mf.setThresholds(ladder[ao]);
    const double acc = core::approxClassificationAccuracy(
        mf.runner(), data.cls.test);
    const core::TimingOutcome out =
        mf.evaluateTiming(runtime::PlanKind::Combined);

    std::printf("\nAO operating point (threshold set %zu):\n", ao);
    std::printf("  speedup        %.2fx (%.2f ms -> %.2f ms)\n",
                out.speedup, mf.baseline().result.timeUs / 1e3,
                out.report.result.timeUs / 1e3);
    std::printf("  energy saving  %.1f%%\n", out.energySavingPct);
    std::printf("  accuracy       %.1f%% (loss %.1f%%)\n",
                100.0 * acc, 100.0 * (base_acc - acc));
    return 0;
}
